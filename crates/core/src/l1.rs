//! **Algorithm L1** — Lamport's mutual exclusion executed directly on the
//! mobile hosts (the baseline of Section 3.1.1).
//!
//! Each of the `N` participating MHs keeps a logical clock and a replicated
//! request queue. To enter the critical section a participant broadcasts a
//! timestamped `Request` to the other `N − 1` participants, waits for a
//! message with a larger timestamp from each of them, and enters when its
//! request heads the queue. On exit it broadcasts `Release`.
//!
//! Every message travels MH→MH, costing `2·C_wireless + C_search` and
//! draining battery at both endpoints — the paper's argument for why the
//! overall cost is `3(N−1)(2·C_wireless + C_search)` per execution with
//! energy proportional to `6(N−1)`, and why the algorithm has no answer to
//! disconnection (the run simply stalls).

use crate::algorithm::{AlgoCtx, MutexAlgorithm};
use mobidist_clock::{LamportClock, Timestamp};
use mobidist_net::ids::{MhId, MssId};
use mobidist_net::proto::Src;
use std::collections::{BTreeMap, BTreeSet};

/// L1 protocol messages (all MH→MH).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L1Msg {
    /// Timestamped request for the critical section.
    Request(Timestamp),
    /// Acknowledgement carrying the replier's clock.
    Reply(Timestamp),
    /// The sender has left the critical section.
    Release(Timestamp),
}

impl L1Msg {
    fn timestamp(&self) -> Timestamp {
        match *self {
            L1Msg::Request(t) | L1Msg::Reply(t) | L1Msg::Release(t) => t,
        }
    }
}

/// Per-participant replicated state (lives *on the MH*, which is exactly the
/// paper's objection).
#[derive(Debug)]
struct Participant {
    clock: LamportClock,
    /// The replicated request queue: totally ordered by timestamp.
    queue: BTreeSet<(Timestamp, MhId)>,
    /// Largest timestamp seen from each other participant.
    last_seen: BTreeMap<MhId, Timestamp>,
    /// Own outstanding request, if any.
    own: Option<Timestamp>,
    granted: bool,
}

/// Lamport's algorithm on mobile hosts. See the module docs.
#[derive(Debug)]
pub struct L1 {
    participants: Vec<MhId>,
    state: BTreeMap<MhId, Participant>,
}

impl L1 {
    /// Creates an instance over the given participant set.
    ///
    /// # Panics
    ///
    /// Panics if `participants` is empty.
    pub fn new(participants: Vec<MhId>) -> Self {
        assert!(
            !participants.is_empty(),
            "L1 needs at least one participant"
        );
        let state = participants
            .iter()
            .map(|mh| {
                (
                    *mh,
                    Participant {
                        clock: LamportClock::new(mh.0),
                        queue: BTreeSet::new(),
                        last_seen: BTreeMap::new(),
                        own: None,
                        granted: false,
                    },
                )
            })
            .collect();
        L1 {
            participants,
            state,
        }
    }

    /// The participant set.
    pub fn participants(&self) -> &[MhId] {
        &self.participants
    }

    fn others(&self, me: MhId) -> Vec<MhId> {
        self.participants
            .iter()
            .copied()
            .filter(|p| *p != me)
            .collect()
    }

    /// Lamport's grant condition: own request heads the queue and a message
    /// with a larger timestamp has arrived from every other participant.
    fn try_grant(&mut self, ctx: &mut AlgoCtx<'_, '_, L1Msg, ()>, me: MhId) {
        let others = self.others(me);
        let p = self.state.get_mut(&me).expect("known participant");
        let Some(own_ts) = p.own else { return };
        if p.granted {
            return;
        }
        if p.queue.iter().next() != Some(&(own_ts, me)) {
            return;
        }
        let all_later = others
            .iter()
            .all(|o| p.last_seen.get(o).is_some_and(|t| *t > own_ts));
        if all_later {
            p.granted = true;
            let key = own_ts.counter << 16 | u64::from(own_ts.process & 0xFFFF);
            ctx.grant_with_key(me, key);
        }
    }

    fn note_seen(&mut self, me: MhId, from: MhId, ts: Timestamp) {
        let p = self.state.get_mut(&me).expect("known participant");
        let e = p.last_seen.entry(from).or_insert(ts);
        if ts > *e {
            *e = ts;
        }
    }
}

impl MutexAlgorithm for L1 {
    type Msg = L1Msg;
    type Timer = ();

    fn name(&self) -> &'static str {
        "L1"
    }

    fn request(&mut self, ctx: &mut AlgoCtx<'_, '_, L1Msg, ()>, mh: MhId) {
        let others = self.others(mh);
        let p = self.state.get_mut(&mh).expect("requester is a participant");
        debug_assert!(p.own.is_none(), "one outstanding request per MH");
        let ts = p.clock.tick();
        p.own = Some(ts);
        p.granted = false;
        p.queue.insert((ts, mh));
        for o in others {
            // Each request is an MH→MH message: 2·C_wireless + C_search.
            let _ = ctx.mh_send_to_mh(mh, o, L1Msg::Request(ts));
        }
        self.try_grant(ctx, mh);
    }

    fn release(&mut self, ctx: &mut AlgoCtx<'_, '_, L1Msg, ()>, mh: MhId) {
        let others = self.others(mh);
        let p = self.state.get_mut(&mh).expect("known participant");
        let Some(own_ts) = p.own.take() else { return };
        p.granted = false;
        p.queue.remove(&(own_ts, mh));
        let ts = p.clock.tick();
        for o in others {
            let _ = ctx.mh_send_to_mh(mh, o, L1Msg::Release(ts));
        }
    }

    fn on_mss_msg(&mut self, _: &mut AlgoCtx<'_, '_, L1Msg, ()>, _: MssId, _: Src, _: L1Msg) {
        unreachable!("L1 exchanges messages only between mobile hosts");
    }

    fn on_mh_msg(&mut self, ctx: &mut AlgoCtx<'_, '_, L1Msg, ()>, at: MhId, src: Src, msg: L1Msg) {
        let from = src.as_mh().expect("L1 peers are MHs");
        let ts = msg.timestamp();
        self.note_seen(at, from, ts);
        {
            let p = self.state.get_mut(&at).expect("known participant");
            p.clock.witness(ts);
        }
        match msg {
            L1Msg::Request(req_ts) => {
                {
                    let p = self.state.get_mut(&at).expect("known participant");
                    p.queue.insert((req_ts, from));
                }
                let reply_ts = self
                    .state
                    .get_mut(&at)
                    .expect("known participant")
                    .clock
                    .tick();
                let _ = ctx.mh_send_to_mh(at, from, L1Msg::Reply(reply_ts));
            }
            L1Msg::Reply(_) => {}
            L1Msg::Release(_) => {
                let p = self.state.get_mut(&at).expect("known participant");
                // Remove the releaser's (unique) queued request.
                let doomed: Vec<(Timestamp, MhId)> = p
                    .queue
                    .iter()
                    .filter(|(_, who)| *who == from)
                    .copied()
                    .collect();
                for d in doomed {
                    p.queue.remove(&d);
                }
            }
        }
        self.try_grant(ctx, at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn participants_are_recorded() {
        let l1 = L1::new(vec![MhId(2), MhId(5), MhId(7)]);
        assert_eq!(l1.participants(), &[MhId(2), MhId(5), MhId(7)]);
        assert_eq!(l1.others(MhId(5)), vec![MhId(2), MhId(7)]);
        assert_eq!(l1.name(), "L1");
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn empty_participants_rejected() {
        let _ = L1::new(vec![]);
    }

    #[test]
    fn message_timestamps_extracted() {
        let ts = Timestamp::new(4, 1);
        assert_eq!(L1Msg::Request(ts).timestamp(), ts);
        assert_eq!(L1Msg::Reply(ts).timestamp(), ts);
        assert_eq!(L1Msg::Release(ts).timestamp(), ts);
    }
}
