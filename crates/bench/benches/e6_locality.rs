//! Regenerates E6: |LV(G)| vs locality (Section 4.3).
fn main() {
    let quick = std::env::var_os("MOBIDIST_QUICK").is_some();
    println!("{}", mobidist_bench::exp_group::e6_locality(quick));
}
