# Convenience targets; see ci/check.sh for the full gate.

.PHONY: build test check bench perf quick tracecheck

build:
	cargo build --workspace --release

test:
	cargo test --workspace -q

check:
	./ci/check.sh

# All experiment tables + micro-benchmarks.
bench:
	cargo bench --workspace

# Kernel wall-time/events-per-second report -> BENCH_kernel.json.
perf:
	cargo run --release --bin perfreport

# Fast small-scale experiment tables.
quick:
	cargo run --release --bin experiments -- all --quick

# Capture a quick E2 trace, validate the schema, and diff the trace-derived
# message counts against the cost ledger (see OBSERVABILITY.md).
tracecheck:
	cargo build --release --bin experiments --bin tracereport
	./target/release/experiments e2 --quick --trace target/tracecheck.jsonl > /dev/null
	./target/release/tracereport --check target/tracecheck.jsonl
