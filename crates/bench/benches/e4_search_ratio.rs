//! Regenerates E4: L1/L2 factor vs C_search/C_fixed.
fn main() {
    let quick = std::env::var_os("MOBIDIST_QUICK").is_some();
    println!("{}", mobidist_bench::exp_mutex::e4_search_ratio(quick));
}
