//! # mobidist-core — mobile mutual exclusion
//!
//! The mutual-exclusion suite of *"Structuring Distributed Algorithms for
//! Mobile Hosts"* (ICDCS 1994), built on the
//! [`mobidist-net`](mobidist_net) two-tier simulator:
//!
//! | Algorithm | Where it runs | Paper's verdict |
//! |-----------|---------------|-----------------|
//! | [`L1`](l1::L1)   | Lamport's algorithm on the `N` MHs | baseline: `3(N−1)(2C_w+C_s)` per execution, stalls on disconnect |
//! | [`L2`](l2::L2)   | Lamport's algorithm at the `M` MSS proxies | redesign: constant search cost, 3 wireless msgs per execution |
//! | [`L2C`](l2c::L2c) | flat-combining L2: each MSS batches its cell's requests into one Lamport entry | extension: `(k+1)/k` wireless msgs per execution at batch size `k` |
//! | [`R1`](r1::R1)   | Le Lann token ring over the MHs | baseline: `N(2C_w+C_s)` per traversal regardless of demand |
//! | [`R2`](r2::R2)   | token ring over the MSSs (plain / counter / token-list guards) | redesign: cost ∝ requests served |
//!
//! All algorithms implement [`MutexAlgorithm`](algorithm::MutexAlgorithm)
//! and run under the shared [`MutexHarness`](harness::MutexHarness), which
//! drives a closed-loop workload and checks safety (one holder at a time),
//! fairness (timestamp order where applicable) and liveness.
//!
//! ## Example
//!
//! ```
//! use mobidist_core::prelude::*;
//! use mobidist_net::prelude::*;
//!
//! let cfg = NetworkConfig::new(4, 8).with_seed(7);
//! let wl = WorkloadConfig::all_mhs(8, 2);
//! let harness = MutexHarness::new(L2::new(4), wl);
//! let mut sim = Simulation::new(cfg, harness);
//! sim.run_until(SimTime::from_ticks(2_000_000));
//! let report = sim.protocol().report();
//! assert!(report.is_clean_and_live());
//! assert_eq!(report.completed, 16);
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod algorithm;
pub mod checker;
pub mod harness;
pub mod l1;
pub mod l2;
pub mod l2c;
pub mod r1;
pub mod r2;

/// Convenient glob import.
pub mod prelude {
    pub use crate::algorithm::{AlgoCtx, Effect, HarnessTimer, MutexAlgorithm};
    pub use crate::checker::{Episode, SafetyChecker};
    pub use crate::harness::{MutexHarness, MutexReport, WorkloadConfig};
    pub use crate::l1::{L1Msg, L1};
    pub use crate::l2::{L2Msg, L2};
    pub use crate::l2c::{L2c, L2cMsg};
    pub use crate::r1::{R1DisconnectPolicy, R1Msg, R1Timer, R1};
    pub use crate::r2::{R2Msg, RingGuard, TokenState, R2};
}
