//! **Pure search** (Section 4.1): no location information is maintained.
//!
//! Each member only knows the membership list. A group message is sent as
//! `|G| − 1` separate point-to-point MH→MH messages, each incurring a search:
//! cost `(|G|−1)(2·C_wireless + C_search)` per group message, *independent of
//! mobility* — moves cost nothing, every send pays the full search price.

use crate::strategy::{GroupCtx, LocationStrategy};
use mobidist_net::ids::{MhId, MssId};
use mobidist_net::proto::Src;

/// Pure-search protocol messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PsMsg {
    /// A group message payload, searched to each member individually.
    Group {
        /// The group message id.
        msg_id: u64,
    },
}

/// The pure-search strategy. See the module docs.
#[derive(Debug)]
pub struct PureSearch {
    members: Vec<MhId>,
}

impl PureSearch {
    /// Creates the strategy over the given membership list.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn new(members: Vec<MhId>) -> Self {
        assert!(!members.is_empty(), "a group needs members");
        PureSearch { members }
    }
}

impl LocationStrategy for PureSearch {
    type Msg = PsMsg;
    type Timer = ();

    fn name(&self) -> &'static str {
        "pure-search"
    }

    fn send_group_message(
        &mut self,
        ctx: &mut GroupCtx<'_, '_, PsMsg, ()>,
        from: MhId,
        msg_id: u64,
    ) {
        for m in self.members.clone() {
            if m != from {
                // One wireless up + search + wireless down per member.
                let _ = ctx.mh_send_to_mh(from, m, PsMsg::Group { msg_id });
            }
        }
    }

    fn on_mss_msg(&mut self, _: &mut GroupCtx<'_, '_, PsMsg, ()>, _: MssId, _: Src, _: PsMsg) {
        unreachable!("pure search never addresses a fixed host directly");
    }

    fn on_mh_msg(&mut self, ctx: &mut GroupCtx<'_, '_, PsMsg, ()>, at: MhId, _: Src, msg: PsMsg) {
        let PsMsg::Group { msg_id } = msg;
        ctx.deliver(at, msg_id);
    }

    fn on_search_failed(
        &mut self,
        ctx: &mut GroupCtx<'_, '_, PsMsg, ()>,
        _origin: MssId,
        _target: MhId,
        _msg: PsMsg,
    ) {
        // The member is disconnected: the copy is dropped (audited as a miss
        // only if the member was connected at send time).
        ctx.bump("ps_undeliverable");
    }
}
