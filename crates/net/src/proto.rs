//! The protocol interface: how an algorithm plugs into the kernel.
//!
//! An algorithm implements [`Protocol`] and receives callbacks for message
//! deliveries, timers, and the mobility events of the system model (join,
//! leave, disconnect, reconnect, failed searches, wireless losses). All
//! effects go through [`Ctx`], which exposes exactly the communication
//! primitives of the paper's model — nothing more. In particular there is no
//! way for an algorithm to send directly to a non-local MH without paying the
//! search cost.

use crate::config::NetworkConfig;
use crate::cost::CostModel;
use crate::error::NetError;
use crate::host::MhStatus;
use crate::ids::{MhId, MssId};
use crate::kernel::Kernel;
use crate::ledger::CostLedger;
use crate::obs::TraceEvent;
use crate::rng::SimRng;
use crate::time::SimTime;
use std::fmt::Debug;

/// The origin of a delivered message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Src {
    /// Sent by a fixed host.
    Mss(MssId),
    /// Sent by a mobile host.
    Mh(MhId),
}

impl Src {
    /// The MSS id, if the sender was a fixed host.
    pub fn as_mss(self) -> Option<MssId> {
        match self {
            Src::Mss(m) => Some(m),
            Src::Mh(_) => None,
        }
    }

    /// The MH id, if the sender was a mobile host.
    pub fn as_mh(self) -> Option<MhId> {
        match self {
            Src::Mh(h) => Some(h),
            Src::Mss(_) => None,
        }
    }
}

/// Events queued by the kernel for dispatch to the protocol.
#[derive(Debug)]
pub enum ProtoEvent<M, T> {
    /// A message arrived at a fixed host.
    MssMsg {
        /// Receiving MSS.
        at: MssId,
        /// Sender.
        src: Src,
        /// Payload.
        msg: M,
    },
    /// A message arrived at a mobile host.
    MhMsg {
        /// Receiving MH.
        at: MhId,
        /// Sender.
        src: Src,
        /// Payload.
        msg: M,
    },
    /// A coalesced run of messages (two or more) arrived at one fixed host
    /// at the same tick. Dispatched through [`Protocol::on_mss_batch`] in
    /// the exact `(time, seq)` order the messages would have arrived
    /// individually; the kernel only forms batches where that order is
    /// provably unobservable (see DESIGN.md §7). The `Vec` is recycled by
    /// the driver after dispatch.
    MssBatch {
        /// Receiving MSS.
        at: MssId,
        /// `(sender, payload)` pairs in arrival order.
        msgs: Vec<(Src, M)>,
    },
    /// A protocol timer fired.
    Timer(T),
    /// An MH joined a cell (`join()`); `prev` carries the previous MSS id
    /// when the configuration supplies it (handoff support).
    Joined {
        /// The joining MH.
        mh: MhId,
        /// The new local MSS.
        mss: MssId,
        /// The previous cell, if supplied with the join.
        prev: Option<MssId>,
    },
    /// An MH left its cell (`leave(r)`).
    Left {
        /// The leaving MH.
        mh: MhId,
        /// The cell it left.
        mss: MssId,
    },
    /// An MH voluntarily disconnected (`disconnect(r)`).
    Disconnected {
        /// The disconnecting MH.
        mh: MhId,
        /// The MSS holding its "disconnected" flag.
        mss: MssId,
    },
    /// An MH reconnected (`reconnect(mh, prev)`).
    Reconnected {
        /// The reconnecting MH.
        mh: MhId,
        /// The new local MSS.
        mss: MssId,
        /// Where it had disconnected, when supplied.
        prev: Option<MssId>,
    },
    /// A search-routed message could not be delivered because the target is
    /// disconnected; the MSS of the disconnection cell informed the origin.
    SearchFailed {
        /// The MSS that initiated the search.
        origin: MssId,
        /// The unreachable MH.
        target: MhId,
        /// The undeliverable payload, returned to the protocol.
        msg: M,
    },
    /// A plain (non-searched) wireless downlink message was lost because the
    /// MH left the cell first (prefix-delivery semantics).
    WirelessLost {
        /// The sending MSS.
        mss: MssId,
        /// The departed MH.
        mh: MhId,
        /// The lost payload.
        msg: M,
    },
    /// The fault plane crashed an MSS (fail-stop with stable state; see
    /// SCENARIOS.md). Its wired traffic is deferred and its residents
    /// evacuate; delivered to the protocol so survivors can react.
    MssCrashed {
        /// The crashed station.
        mss: MssId,
    },
    /// A crashed MSS recovered with its protocol state intact; deferred
    /// wired messages are being re-delivered.
    MssRecovered {
        /// The recovered station.
        mss: MssId,
    },
}

/// A coalesced same-tick run of `(sender, payload)` pairs delivered to one
/// fixed host, in arrival order. Passed by value to
/// [`Protocol::on_mss_batch`]; dropping it discards undelivered messages.
pub type MsgBatch<'a, M> = std::vec::Drain<'a, (Src, M)>;

/// A distributed algorithm (or harness) running on the two-tier network.
///
/// All methods have no-op defaults except the two message deliveries, so
/// simple protocols implement only what they use.
pub trait Protocol: Sized + 'static {
    /// Application message payload. `Clone` lets broadcast fan-outs share
    /// one payload and copy only at delivery (every payload in this
    /// workspace is `Copy` or a cheap clone).
    type Msg: Debug + Clone + 'static;
    /// Timer payload.
    type Timer: Debug + 'static;

    /// Called once before the first event is processed.
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Timer>) {
        let _ = ctx;
    }

    /// A message arrived at a fixed host.
    fn on_mss_msg(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Timer>,
        at: MssId,
        src: Src,
        msg: Self::Msg,
    );

    /// A message arrived at a mobile host.
    fn on_mh_msg(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Timer>,
        at: MhId,
        src: Src,
        msg: Self::Msg,
    );

    /// A coalesced run of same-tick messages arrived at one fixed host
    /// (batched delivery mode only; always two or more messages, in the
    /// exact order [`on_mss_msg`](Protocol::on_mss_msg) would have seen
    /// them). The default unrolls the batch through `on_mss_msg`, so
    /// protocols observe identical callback sequences in both delivery
    /// modes unless they override this for batch-aware handling.
    fn on_mss_batch(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Timer>,
        at: MssId,
        batch: MsgBatch<'_, Self::Msg>,
    ) {
        for (src, msg) in batch {
            self.on_mss_msg(ctx, at, src, msg);
        }
    }

    /// A protocol timer fired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Timer>, timer: Self::Timer) {
        let _ = (ctx, timer);
    }

    /// An MH completed a `join()` into a new cell.
    fn on_mh_joined(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Timer>,
        mh: MhId,
        mss: MssId,
        prev: Option<MssId>,
    ) {
        let _ = (ctx, mh, mss, prev);
    }

    /// An MH sent `leave(r)` and exited its cell.
    fn on_mh_left(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Timer>, mh: MhId, mss: MssId) {
        let _ = (ctx, mh, mss);
    }

    /// An MH voluntarily disconnected.
    fn on_mh_disconnected(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Timer>,
        mh: MhId,
        mss: MssId,
    ) {
        let _ = (ctx, mh, mss);
    }

    /// An MH reconnected after a disconnection.
    fn on_mh_reconnected(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Timer>,
        mh: MhId,
        mss: MssId,
        prev: Option<MssId>,
    ) {
        let _ = (ctx, mh, mss, prev);
    }

    /// A search terminated at a disconnected MH; the payload is handed back.
    fn on_search_failed(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Timer>,
        origin: MssId,
        target: MhId,
        msg: Self::Msg,
    ) {
        let _ = (ctx, origin, target, msg);
    }

    /// A plain local wireless downlink message was lost to a departure.
    fn on_wireless_lost(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Timer>,
        mss: MssId,
        mh: MhId,
        msg: Self::Msg,
    ) {
        let _ = (ctx, mss, mh, msg);
    }

    /// The fault plane crashed `mss` (fail-stop with stable state): its
    /// wired traffic is deferred until recovery and its resident MHs are
    /// evacuating. Default: no-op — the model's deferral semantics already
    /// keep safe algorithms safe.
    fn on_mss_crashed(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Timer>, mss: MssId) {
        let _ = (ctx, mss);
    }

    /// A crashed `mss` recovered with its protocol state intact; deferred
    /// wired messages are re-delivered in order right after this callback.
    fn on_mss_recovered(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Timer>, mss: MssId) {
        let _ = (ctx, mss);
    }
}

/// Handle through which a protocol interacts with the kernel.
///
/// Wraps the kernel mutably for the duration of one callback.
#[derive(Debug)]
pub struct Ctx<'a, M, T> {
    pub(crate) k: &'a mut Kernel<M, T>,
}

impl<'a, M: Debug + Clone + 'static, T: Debug + 'static> Ctx<'a, M, T> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.k.now()
    }

    /// The network configuration.
    pub fn config(&self) -> &NetworkConfig {
        self.k.config()
    }

    /// The cost model in force.
    pub fn cost_model(&self) -> CostModel {
        self.k.config().cost
    }

    /// Number of fixed hosts, `M`.
    pub fn num_mss(&self) -> usize {
        self.k.config().num_mss
    }

    /// Number of mobile hosts, `N`.
    pub fn num_mh(&self) -> usize {
        self.k.config().num_mh
    }

    /// All MSS ids.
    pub fn mss_ids(&self) -> impl Iterator<Item = MssId> {
        (0..self.k.config().num_mss as u32).map(MssId)
    }

    /// All MH ids.
    pub fn mh_ids(&self) -> impl Iterator<Item = MhId> {
        (0..self.k.config().num_mh as u32).map(MhId)
    }

    /// Sends a point-to-point message on the fixed network (cost `C_fixed`;
    /// free and near-immediate when `from == to`).
    pub fn send_fixed(&mut self, from: MssId, to: MssId, msg: M) {
        self.k.send_fixed(from, to, msg);
    }

    /// Sends `msg` to every other MSS (cost `(M − 1)·C_fixed`). One payload
    /// is stored for the whole fan-out and cloned only at delivery; in
    /// batched delivery mode the charge and the wheel traffic are fused
    /// across the fan-out too.
    pub fn broadcast_fixed(&mut self, from: MssId, msg: M) {
        self.k.broadcast_fixed(from, msg);
    }

    /// Sends on the wireless downlink to a local MH (cost `C_wireless`).
    ///
    /// # Errors
    ///
    /// [`NetError::NotLocal`] when `mh` is not currently local to `mss`.
    pub fn send_wireless_down(&mut self, mss: MssId, mh: MhId, msg: M) -> Result<(), NetError> {
        self.k.send_wireless_down(mss, mh, msg)
    }

    /// Broadcasts on the cell's wireless channel: one `C_wireless` charge
    /// reaches every MH local to `mss` (each pays reception energy). One
    /// payload is stored for the fan-out and cloned per delivery.
    /// Returns the recipient count.
    pub fn broadcast_cell(&mut self, mss: MssId, msg: M) -> usize {
        self.k.broadcast_cell(mss, msg)
    }

    /// Sends on the wireless uplink from an MH to its current local MSS
    /// (cost `C_wireless`). While the MH is between cells the message is
    /// buffered and flushed — and charged — on the next `join()`.
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] when `mh` has disconnected.
    pub fn send_wireless_up(&mut self, mh: MhId, msg: M) -> Result<(), NetError> {
        self.k.send_wireless_up(mh, msg)
    }

    /// Locates `mh` and forwards `msg` to it from `origin` (cost `C_search +
    /// C_wireless`, more after in-flight moves). Delivery is guaranteed
    /// unless the MH disconnects, in which case
    /// [`Protocol::on_search_failed`] fires at the origin.
    pub fn search_send(&mut self, origin: MssId, mh: MhId, msg: M) {
        self.k.search_send(origin, mh, msg);
    }

    /// Sends from one MH to another over the two-tier network (cost
    /// `2·C_wireless + C_search`), preserving logical FIFO order per sender
    /// pair — the service L1 demands from the network layer.
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] when the *sender* has disconnected.
    pub fn mh_send_to_mh(&mut self, src: MhId, dst: MhId, msg: M) -> Result<(), NetError> {
        self.k.mh_send_to_mh(src, dst, msg)
    }

    /// Schedules a protocol timer after `delay` ticks.
    pub fn set_timer(&mut self, delay: u64, timer: T) {
        self.k.set_timer(delay, timer);
    }

    /// True when `mh` is currently local to `mss`.
    pub fn is_local(&self, mss: MssId, mh: MhId) -> bool {
        self.k.is_local(mss, mh)
    }

    /// MHs currently local to `mss`, in ascending id order (allocation-free;
    /// `.collect()` when a `Vec` is genuinely needed).
    pub fn local_mhs(&self, mss: MssId) -> impl Iterator<Item = MhId> + '_ {
        self.k.local_mhs(mss)
    }

    /// Connectivity status of `mh`.
    pub fn mh_status(&self, mh: MhId) -> MhStatus {
        self.k.mh_status(mh)
    }

    /// True when the "disconnected" flag for `mh` is set at `mss`.
    pub fn mh_disconnected_here(&self, mss: MssId, mh: MhId) -> bool {
        self.k.mh_disconnected_here(mss, mh)
    }

    /// True when the fault plane currently has `mss` crashed (wired traffic
    /// to and from it is being deferred). Always `false` on fault-free
    /// configurations.
    pub fn mss_down(&self, mss: MssId) -> bool {
        self.k.mss_down(mss)
    }

    /// Oracle view of the MH's current cell. Intended for harnesses,
    /// checkers and workload drivers — algorithms must locate MHs through
    /// [`search_send`](Ctx::search_send) to incur the model's costs.
    pub fn current_cell(&self, mh: MhId) -> Option<MssId> {
        self.k.current_cell(mh)
    }

    /// Puts `mh` into or out of doze mode. Deliveries to a dozing MH count
    /// as doze interruptions in the ledger.
    pub fn set_doze(&mut self, mh: MhId, dozing: bool) {
        self.k.set_doze(mh, dozing);
    }

    /// Forces `mh` to leave its cell now and join `dest` (or a
    /// pattern-chosen cell) after the configured gap. No-op when the MH is
    /// not connected.
    pub fn initiate_move(&mut self, mh: MhId, dest: Option<MssId>) {
        self.k.initiate_move(mh, dest);
    }

    /// Forces `mh` to disconnect now. No-op when not connected.
    pub fn initiate_disconnect(&mut self, mh: MhId) {
        self.k.initiate_disconnect(mh);
    }

    /// Forces a disconnected `mh` to reconnect at `at` (or its previous
    /// cell) after `delay` ticks. No-op when not disconnected.
    pub fn initiate_reconnect(&mut self, mh: MhId, at: Option<MssId>, delay: u64) {
        self.k.initiate_reconnect(mh, at, delay);
    }

    /// Read-only view of the cost ledger.
    pub fn ledger(&self) -> &CostLedger {
        self.k.ledger()
    }

    /// Increments a protocol-defined named ledger counter.
    pub fn bump(&mut self, name: &str) {
        self.k.ledger_mut().bump(name);
    }

    /// Adds to a protocol-defined named ledger counter.
    pub fn bump_by(&mut self, name: &str, by: u64) {
        self.k.ledger_mut().bump_by(name, by);
    }

    /// Protocol-visible random stream (deterministic per seed).
    pub fn rng(&mut self) -> &mut SimRng {
        self.k.proto_rng()
    }

    /// Emits an algorithm-level [`TraceEvent`] (CS phases, `LV(G)` updates,
    /// proxy forwards) into the kernel's structured trace stream, in order
    /// with the kernel's own emissions. One branch and no event
    /// construction when no sink is installed.
    pub fn emit(&mut self, ev: TraceEvent) {
        self.k.emit(|| ev);
    }
}
