//! Experiment-level glue over the [`mobidist_runcache`] store.
//!
//! Every run helper in this crate funnels through [`cached`]: given the
//! canonical descriptor of a run (site label + [`NetworkConfig`] + the
//! workload/tuning extras) it either replays a stored outcome or computes,
//! stores and returns a fresh one. Because runs are deterministic and the
//! fingerprint covers everything the outcome depends on, a warm cache is
//! **byte-indistinguishable** from cold execution in every emitted table
//! (pinned by the `cache_check` integration test).
//!
//! The cache is inactive — and this module reduces to one environment-
//! variable probe per run — unless `MOBIDIST_CACHE` names a directory
//! (the CLIs' `--cache DIR` flag sets it).
//!
//! Labels name the *construction site*, not just the algorithm: two call
//! sites that build their harness differently must not share a label, or
//! identical `(cfg, extras)` could alias different computations. Helpers
//! (`run_l1_in`, `run_strategy_in`, …) use the algorithm name; direct
//! construction sites in E3/E7/E10 use site-specific labels (`"e3_l1"`,
//! `"e10_proxy"`, …).

use crate::exp_group::GroupRun;
use crate::exp_mutex::MutexRun;
use crate::exp_serve::ServeRun;
use mobidist_net::config::NetworkConfig;
use mobidist_net::fingerprint::{CanonHash, Fingerprint};
use mobidist_net::ledger::CostLedger;
use mobidist_runcache::codec::{Codec, Reader};
use mobidist_runcache::{cache_dir, store};

/// Memoizes one deterministic run.
///
/// When the cache is inactive this is exactly `compute()`. When active, a
/// hit decodes the stored outcome and (if tracing is enabled) emits a
/// synthetic one-event `cache_hit` trace envelope carrying the cached
/// ledger via `ledger_of`; a miss computes, stores and returns.
///
/// `extra` carries everything beyond the [`NetworkConfig`] that the run's
/// outcome depends on — workload, horizon, algorithm tuning. Omitting a
/// knob from `extra` is the one way to corrupt results with this cache, so
/// err on the side of including too much: a spurious distinction only
/// costs a recompute.
pub fn cached<T: Codec>(
    label: &str,
    cfg: &NetworkConfig,
    extra: &impl CanonHash,
    ledger_of: impl Fn(&T) -> &CostLedger,
    compute: impl FnOnce() -> T,
) -> T {
    let Some(dir) = cache_dir() else {
        return compute();
    };
    let fp = Fingerprint::of(&(label, cfg, extra));
    let cache = store::global();
    if let Some(bytes) = cache.get(Some(&dir), fp) {
        let mut r = Reader::new(&bytes);
        if let Some(out) = T::decode(&mut r).filter(|_| r.is_empty()) {
            crate::obs::trace_cached_run(label, cfg, fp, ledger_of(&out));
            return out;
        }
        // The record validated at the store layer but does not decode as
        // `T` (e.g. two sites sharing a fingerprint with different result
        // types — a bug, but one that must degrade to recomputation).
    }
    let out = compute();
    let mut bytes = Vec::new();
    out.encode(&mut bytes);
    cache.put(Some(&dir), fp, bytes);
    out
}

impl Codec for MutexRun {
    fn encode(&self, out: &mut Vec<u8>) {
        let MutexRun { report, ledger } = self;
        report.encode(out);
        ledger.encode(out);
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(MutexRun {
            report: Codec::decode(r)?,
            ledger: Codec::decode(r)?,
        })
    }
}

impl Codec for ServeRun {
    fn encode(&self, out: &mut Vec<u8>) {
        let ServeRun {
            completed,
            makespan,
            p50,
            p95,
            p99,
            mean_wait,
            jain,
            batches,
            ledger,
        } = self;
        completed.encode(out);
        makespan.encode(out);
        p50.encode(out);
        p95.encode(out);
        p99.encode(out);
        mean_wait.encode(out);
        jain.encode(out);
        batches.encode(out);
        ledger.encode(out);
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(ServeRun {
            completed: Codec::decode(r)?,
            makespan: Codec::decode(r)?,
            p50: Codec::decode(r)?,
            p95: Codec::decode(r)?,
            p99: Codec::decode(r)?,
            mean_wait: Codec::decode(r)?,
            jain: Codec::decode(r)?,
            batches: Codec::decode(r)?,
            ledger: Codec::decode(r)?,
        })
    }
}

impl Codec for GroupRun {
    fn encode(&self, out: &mut Vec<u8>) {
        let GroupRun { report, ledger, lv } = self;
        report.encode(out);
        ledger.encode(out);
        lv.encode(out);
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(GroupRun {
            report: Codec::decode(r)?,
            ledger: Codec::decode(r)?,
            lv: Codec::decode(r)?,
        })
    }
}
