//! Criterion micro-benchmarks: simulator kernel throughput and end-to-end
//! algorithm executions. These measure *implementation* speed (how fast the
//! reproduction runs), complementing the e*-benches which measure *model*
//! costs (what the paper predicts).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mobidist_core::prelude::*;
use mobidist_group::prelude::*;
use mobidist_net::prelude::*;
use std::hint::black_box;

/// A protocol that keeps `depth` fixed-network messages bouncing between
/// MSS pairs forever — pure kernel overhead.
#[derive(Debug)]
struct Bouncer {
    depth: usize,
}

impl Protocol for Bouncer {
    type Msg = u64;
    type Timer = ();
    fn on_start(&mut self, ctx: &mut Ctx<'_, u64, ()>) {
        let m = ctx.num_mss() as u32;
        for i in 0..self.depth {
            let from = MssId(i as u32 % m);
            let to = MssId((i as u32 + 1) % m);
            ctx.send_fixed(from, to, i as u64);
        }
    }
    fn on_mss_msg(&mut self, ctx: &mut Ctx<'_, u64, ()>, at: MssId, _: Src, msg: u64) {
        let m = ctx.num_mss() as u32;
        ctx.send_fixed(at, MssId((at.0 + 1) % m), msg + 1);
    }
    fn on_mh_msg(&mut self, _: &mut Ctx<'_, u64, ()>, _: MhId, _: Src, _: u64) {}
}

fn kernel_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel");
    for depth in [16usize, 256] {
        g.bench_with_input(
            BenchmarkId::new("fixed_msgs_10k_events", depth),
            &depth,
            |b, &depth| {
                b.iter(|| {
                    let cfg = NetworkConfig::new(8, 8).with_seed(1);
                    let mut sim = Simulation::new(cfg, Bouncer { depth });
                    for _ in 0..10_000 {
                        if !sim.step() {
                            break;
                        }
                    }
                    black_box(sim.ledger().fixed_msgs)
                })
            },
        );
    }
    g.finish();
}

fn mutex_executions(c: &mut Criterion) {
    let mut g = c.benchmark_group("mutex");
    g.bench_function("l2_16mh_1req_each", |b| {
        b.iter(|| {
            let cfg = NetworkConfig::new(4, 16).with_seed(2);
            let wl = WorkloadConfig::all_mhs(16, 1);
            let mut sim = Simulation::new(cfg, MutexHarness::new(L2::new(4), wl));
            sim.run_until(SimTime::from_ticks(50_000_000));
            let r = sim.protocol().report();
            assert_eq!(r.completed, 16);
            black_box(r.completed)
        })
    });
    g.bench_function("r2_prime_16mh_1req_each", |b| {
        b.iter(|| {
            let cfg = NetworkConfig::new(4, 16).with_seed(2);
            let wl = WorkloadConfig::all_mhs(16, 1);
            let algo = R2::new(4, RingGuard::Counter);
            let mut sim = Simulation::new(cfg, MutexHarness::new(algo, wl));
            sim.run_until(SimTime::from_ticks(100_000));
            black_box(sim.protocol().report().completed)
        })
    });
    g.finish();
}

fn group_messaging(c: &mut Criterion) {
    let mut g = c.benchmark_group("group");
    g.bench_function("location_view_20msgs_mobile", |b| {
        b.iter(|| {
            let members: Vec<MhId> = (0..8u32).map(MhId).collect();
            let cfg = NetworkConfig::new(8, 8)
                .with_seed(3)
                .with_mobility(MobilityConfig::moving(500));
            let wl = GroupWorkload::new(members.clone(), 20, 100);
            let mut sim =
                Simulation::new(cfg, GroupHarness::new(LocationView::new(members, MssId(0)), wl));
            sim.run_until(SimTime::from_ticks(500_000));
            black_box(sim.protocol().report().delivered)
        })
    });
    g.finish();
}

criterion_group!(benches, kernel_throughput, mutex_executions, group_messaging);
criterion_main!(benches);
