//! Property test: the timing wheel ([`EventQueue`]) and the reference 4-ary
//! heap ([`EventHeap`]) produce identical `(time, payload)` pop sequences on
//! randomized workloads — including far-future times routed through the
//! wheel's overflow heap and bursts of same-tick ties, whose relative order
//! must follow insertion sequence.
//!
//! The kernel only ever schedules at or after the current time, so the
//! generator keeps every pushed time `>=` the last popped time — the same
//! contract the wheel's cursor relies on.

use mobidist_net::event::{EventHeap, EventQueue};
use mobidist_net::rng::SimRng;
use mobidist_net::time::SimTime;

/// Drives both queues through an identical randomized interleaving of pushes
/// and pops and asserts every observable agrees step by step.
fn run_interleaving(seed: u64, ops: usize, spread: impl Fn(&mut SimRng, u64) -> u64) {
    let mut rng = SimRng::seed_from(seed);
    let mut wheel: EventQueue<u64> = EventQueue::new();
    let mut heap: EventHeap<u64> = EventHeap::new();
    let mut now = 0u64; // lower bound for new pushes: the last popped time
    let mut payload = 0u64;

    for step in 0..ops {
        assert_eq!(wheel.len(), heap.len(), "len diverged at step {step}");
        assert_eq!(
            wheel.peek_time(),
            heap.peek_time(),
            "peek_time diverged at step {step}"
        );
        // Three ops, biased toward pushes so queues stay populated:
        // 0..=5 push, 6..=8 pop, 9 bounded pop (pop_if_at_or_before).
        match rng.below(10) {
            0..=5 => {
                let t = SimTime::from_ticks(spread(&mut rng, now));
                wheel.push(t, payload);
                heap.push(t, payload);
                payload += 1;
            }
            6..=8 => {
                let w = wheel.pop();
                let h = heap.pop();
                assert_eq!(w, h, "pop diverged at step {step}");
                if let Some((t, _)) = w {
                    now = t.ticks();
                }
            }
            _ => {
                // A bound at, below, or above the next event: the kernel's
                // `advance_up_to` path. A refused pop must not change
                // anything (checked by the len/peek asserts next iteration).
                let slack = rng.below(2_000);
                let limit = SimTime::from_ticks(now + slack);
                let w = wheel.pop_if_at_or_before(limit);
                let h = heap.pop_if_at_or_before(limit);
                assert_eq!(w, h, "bounded pop diverged at step {step}");
                if let Some((t, _)) = w {
                    now = t.ticks();
                }
            }
        }
    }
    // Drain: the tails must match exactly too.
    loop {
        let w = wheel.pop();
        let h = heap.pop();
        assert_eq!(w, h, "drain diverged");
        if w.is_none() {
            break;
        }
    }
}

#[test]
fn uniform_near_future_delays() {
    // Delays within one level-0 page most of the time.
    for seed in [1, 2, 3, 4, 5] {
        run_interleaving(seed, 4_000, |rng, now| now + rng.below(200));
    }
}

#[test]
fn wide_delays_cross_all_levels() {
    // Delays up to 2^26: exercises level 1, level 2 and cascading.
    for seed in [10, 11, 12] {
        run_interleaving(seed, 3_000, |rng, now| now + rng.below(1 << 26));
    }
}

#[test]
fn far_future_hits_overflow_heap() {
    // Mostly near events with occasional jumps far beyond the wheel horizon,
    // so entries land in the overflow heap and must drain back in order.
    for seed in [20, 21, 22] {
        run_interleaving(seed, 2_000, |rng, now| {
            if rng.chance(0.15) {
                now + (1 << 25) + rng.below(1 << 40)
            } else {
                now + rng.below(500)
            }
        });
    }
}

#[test]
fn same_tick_bursts_keep_insertion_order() {
    // Many pushes collapse onto few distinct ticks; ties must pop in
    // insertion order on both queues.
    for seed in [30, 31, 32] {
        run_interleaving(seed, 4_000, |rng, now| now + rng.below(4) * 64);
    }
}

#[test]
fn bimodal_near_far_mixture() {
    // The micro-bench distribution: half near, half just past the region
    // boundary, so cascades and overflow drains interleave with hot pops.
    for seed in [40, 41] {
        run_interleaving(seed, 3_000, |rng, now| {
            if rng.chance(0.5) {
                now + rng.below(64)
            } else {
                now + (1 << 24) + rng.below(1 << 20)
            }
        });
    }
}
