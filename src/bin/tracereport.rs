//! Reads structured JSONL traces written by `experiments --trace` and
//! prints per-run, per-phase cost breakdowns — or, with `--check`,
//! validates every line against the schema and diffs the trace-derived
//! message counts against the ledger counts recorded at `run_end`.
//!
//! ```text
//! cargo run --release --bin experiments -- e2 --quick --trace e2.jsonl
//! cargo run --release --bin tracereport -- e2.jsonl
//! cargo run --release --bin tracereport -- --check e2.jsonl
//! ```
//!
//! The full schema is documented in OBSERVABILITY.md and in `--help`.

use mobidist_cost as formulas;
use mobidist_cost::Params;
use mobidist_net::metrics::{Histogram, Metrics};
use mobidist_net::obs::{parse_line, Line, RunMeta, RunSummary, TraceEvent, SCHEMA_VERSION};
use mobidist_net::time::SimTime;
use std::io::BufRead;
use std::process::ExitCode;

const HELP: &str = "\
tracereport — inspect structured simulation traces

usage: tracereport [--check] [--no-hist] <trace.jsonl>...

modes:
  (default)   per-run report: message counts per channel class, cost
              breakdown, critical-section phase timings (wait/hold),
              handoff gaps, send inter-arrival histograms, and a
              predicted-vs-measured drill-down for the runs the paper
              gives closed forms for (labels `l1`, `l2`).
  --check     validate every line against the schema (version, known event
              kinds, required fields, dense per-run seq, monotone (t, seq))
              and diff the trace-derived counts against the `run_end`
              ledger snapshot. Exit code 1 on any violation or mismatch.

options:
  --no-hist   omit the ASCII histograms from the report
  -h, --help  this text

schema (version 1) — one flat JSON object per line:
  envelope   {\"v\":1,\"run\":R,...} on every line; events also carry
             \"seq\" (dense from 0 per run) and \"t\" (sim ticks).
  run_begin  label, m, n, seed, c_fixed, c_wireless, c_search, policy
  run_end    events + the final ledger counters: fixed_msgs,
             wireless_msgs, searches, re_searches, search_failures, moves,
             handoffs, disconnects, reconnects, doze_interruptions,
             wireless_losses, total_cost, total_energy; fault-injection
             runs add fault_crashes, fault_recovers, fault_partitions,
             fault_heals, fault_storms (optional, omitted when zero)
  events     (fields beyond the envelope)
    fixed_send     from, to          charged fixed-network send
    fixed_recv     at, from          fixed-network delivery
    up_send        mh, mss           charged wireless uplink send
    up_recv        mss, mh           uplink delivery at the MSS
    down_send      mss, mh           charged wireless downlink send
    down_recv      mh, mss           downlink delivery at the MH
    cell_broadcast mss, listeners    one charged cell-wide broadcast
    down_lost      mss, mh           downlink lost to a departure
    search         target, re        search issued (re=1: re-search)
    search_fail    origin, target    search ended at a disconnected MH
    doze_interrupt mh                delivery interrupted doze mode
    handoff_begin  mh, from          MH left its cell
    handoff_end    mh, to[, prev]    MH joined a cell
    disconnect     mh, mss           voluntary disconnection
    reconnect      mh, mss[, prev]   reconnection
    cs_request     mh                critical section requested
    cs_enter       mh                critical section entered
    cs_exit        mh                critical section released
    lv_update      cell, added       location-view change applied
    proxy_forward  mss, mh           proxy searched for a moved client
    combine_batch  mss, size         one cell broadcast carrying `size`
                                     combined grants/outputs
    cache_hit      fp_hi, fp_lo      run replayed from the run cache
    shard_sync     shard, window[, skipped]
                                     sharded kernel: window processed at a
                                     barrier round; `skipped` counts empty
                                     windows fast-forwarded just before it
    shard_recv     shard, from, to   sharded kernel: cross-cell wired
                                     delivery (charged as one fixed_msg)
    fault_crash    mss               injected MSS fail-stop crash
    fault_recover  mss               crashed MSS back up, deferred wired
                                     traffic flushed
    fault_partition cut, healed      wired-plane partition at `cut` raised
                                     (healed=0) or healed (healed=1)
    fault_storm    moved             handoff storm forced `moved` hosts out

count identities checked by --check (trace-derived == ledger):
  fixed_msgs    = fixed_send + search_fail + shard_recv
  wireless_msgs = up_send + down_send + cell_broadcast
  searches      = search        re_searches = search(re=1)
  moves         = handoff_end   handoffs    = handoff_end(prev≠to)
  plus search_failures, disconnects, reconnects, doze_interruptions,
  wireless_losses matching their event counts one-to-one.
  Fault identities: fault_crashes = fault_crash events, fault_recovers =
  fault_recover events, fault_partitions = fault_partition(healed=0),
  fault_heals = fault_partition(healed=1), fault_storms = fault_storm
  events — fault events charge no messages, so the message identities
  above are unchanged by fault injection.
  Combining runs (label `l2c`): when a run has both `combine_batch` and
  `cs_enter` events, the batch sizes must sum to the `cs_enter` count —
  every grant is delivered in exactly one batch. Runs with only one of
  the two kinds (e.g. proxy fan-out traces) skip this identity.
  Runs containing a cache_hit event were replayed from the run cache:
  their trace is a stub envelope (run_begin, cache_hit, run_end with the
  cached ledger), so they are exempt from the count identities. The
  envelope structure is still validated.
  Sharded runs (`experiments e12`, `scalecheck`) write one trace part per
  shard, merged into the output by run id; every identity above holds
  per shard because cross-shard wired messages are charged — and traced —
  at the delivering shard.
";

/// Everything accumulated for one run while streaming a trace file.
struct RunAcc {
    meta: Option<RunMeta>,
    metrics: Metrics,
    summary: Option<(RunSummary, u64)>,
    events: u64,
    next_seq: u64,
    last: (SimTime, u64),
    re_searches: u64,
    handoffs: u64,
    /// Sum of `combine_batch` sizes: grants/outputs delivered in batches.
    combined_outputs: u64,
    /// `fault_partition` events with healed=0 (partitions raised).
    partitions_raised: u64,
    /// `fault_partition` events with healed=1 (partitions healed).
    partitions_healed: u64,
    last_fixed_send: Option<SimTime>,
    last_wireless_send: Option<SimTime>,
    fixed_gaps: Histogram,
    wireless_gaps: Histogram,
    errors: Vec<String>,
}

impl RunAcc {
    fn new() -> Self {
        RunAcc {
            meta: None,
            metrics: Metrics::default(),
            summary: None,
            events: 0,
            next_seq: 0,
            last: (SimTime::ZERO, 0),
            re_searches: 0,
            handoffs: 0,
            combined_outputs: 0,
            partitions_raised: 0,
            partitions_healed: 0,
            last_fixed_send: None,
            last_wireless_send: None,
            fixed_gaps: Histogram::default(),
            wireless_gaps: Histogram::default(),
            errors: Vec::new(),
        }
    }

    fn observe(&mut self, seq: u64, t: SimTime, ev: &TraceEvent) {
        if self.meta.is_none() {
            self.errors
                .push(format!("event seq {seq} before run_begin"));
        }
        if self.summary.is_some() {
            self.errors.push(format!("event seq {seq} after run_end"));
        }
        if seq != self.next_seq {
            self.errors.push(format!(
                "seq not dense: expected {}, got {seq}",
                self.next_seq
            ));
        }
        if self.events > 0 && (t, seq) <= self.last {
            self.errors
                .push(format!("(t, seq) not increasing at seq {seq}"));
        }
        self.next_seq = seq + 1;
        self.last = (t, seq);
        self.events += 1;
        self.metrics.observe(t, ev);
        match *ev {
            TraceEvent::Search { re: true, .. } => self.re_searches += 1,
            TraceEvent::HandoffEnd {
                to, prev: Some(p), ..
            } if p != to => self.handoffs += 1,
            TraceEvent::CombineBatch { size, .. } => self.combined_outputs += size as u64,
            TraceEvent::FaultPartition { healed: false, .. } => self.partitions_raised += 1,
            TraceEvent::FaultPartition { healed: true, .. } => self.partitions_healed += 1,
            _ => {}
        }
        if ev.fixed_msgs() > 0 {
            if let Some(prev) = self.last_fixed_send.replace(t) {
                self.fixed_gaps.record(t.saturating_since(prev));
            }
        }
        if ev.wireless_msgs() > 0 {
            if let Some(prev) = self.last_wireless_send.replace(t) {
                self.wireless_gaps.record(t.saturating_since(prev));
            }
        }
    }

    /// Diffs every trace-derived counter against the `run_end` snapshot,
    /// pushing one error per mismatch.
    fn check_against_summary(&mut self) {
        let Some((s, claimed_events)) = self.summary else {
            self.errors.push("missing run_end".to_owned());
            return;
        };
        if self.meta.is_none() {
            self.errors.push("missing run_begin".to_owned());
        }
        if claimed_events != self.events {
            self.errors.push(format!(
                "run_end claims {claimed_events} events, file has {}",
                self.events
            ));
        }
        let m = &self.metrics;
        if m.kind_count("cache_hit") > 0 {
            // Warm cache hit: the run was replayed from the run cache, so
            // the trace is a stub envelope with no per-message events to
            // diff against the ledger. Structural checks above still apply.
            return;
        }
        let pairs: [(&str, u64, u64); 11] = [
            ("fixed_msgs", m.fixed_msgs.get(), s.fixed_msgs),
            ("wireless_msgs", m.wireless_msgs.get(), s.wireless_msgs),
            ("searches", m.kind_count("search"), s.searches),
            ("re_searches", self.re_searches, s.re_searches),
            (
                "search_failures",
                m.kind_count("search_fail"),
                s.search_failures,
            ),
            ("moves", m.kind_count("handoff_end"), s.moves),
            ("handoffs", self.handoffs, s.handoffs),
            ("disconnects", m.kind_count("disconnect"), s.disconnects),
            ("reconnects", m.kind_count("reconnect"), s.reconnects),
            (
                "doze_interruptions",
                m.kind_count("doze_interrupt"),
                s.doze_interruptions,
            ),
            (
                "wireless_losses",
                m.kind_count("down_lost"),
                s.wireless_losses,
            ),
        ];
        // Fault identities: every injected fault emits exactly one trace
        // event and bumps exactly one ledger counter, so they reconcile
        // one-to-one (partitions split by the `healed` flag).
        let fault_pairs: [(&str, u64, u64); 5] = [
            (
                "fault_crashes",
                m.kind_count("fault_crash"),
                s.fault_crashes,
            ),
            (
                "fault_recovers",
                m.kind_count("fault_recover"),
                s.fault_recovers,
            ),
            (
                "fault_partitions",
                self.partitions_raised,
                s.fault_partitions,
            ),
            ("fault_heals", self.partitions_healed, s.fault_heals),
            ("fault_storms", m.kind_count("fault_storm"), s.fault_storms),
        ];
        for &(name, derived, ledger) in pairs.iter().chain(fault_pairs.iter()) {
            if derived != ledger {
                self.errors.push(format!(
                    "{name}: trace-derived {derived} != ledger {ledger}"
                ));
            }
        }
        // Combining identity: in a mutual-exclusion run every grant is
        // delivered in exactly one batch, so the batch sizes sum to the
        // number of CS entries. Applies only when the run has both kinds —
        // proxy fan-out runs batch outputs without any critical section.
        let batches = m.kind_count("combine_batch");
        let entries = m.kind_count("cs_enter");
        if batches > 0 && entries > 0 && self.combined_outputs != entries {
            self.errors.push(format!(
                "combine_batch sizes sum to {} but the run has {entries} cs_enter events",
                self.combined_outputs
            ));
        }
    }

    /// The paper's closed-form per-execution cost for this run's label, when
    /// one exists (`l1`/`l2`).
    fn predicted_cost(&self) -> Option<u64> {
        let meta = self.meta.as_ref()?;
        let p = Params {
            c_fixed: meta.c_fixed,
            c_wireless: meta.c_wireless,
            c_search: meta.c_search,
        };
        match meta.label.as_str() {
            "l1" => Some(formulas::l1_execution_cost(meta.n, p)),
            "l2" => Some(formulas::l2_execution_cost(meta.m, p)),
            _ => None,
        }
    }

    fn print_report(&self, run: u64, hist: bool) {
        let label = self.meta.as_ref().map_or("?", |m| m.label.as_str());
        println!("run {run} [{label}]");
        if let Some(meta) = &self.meta {
            println!(
                "  config: m={} n={} seed={} policy={} (C_fixed={} C_wireless={} C_search={})",
                meta.m,
                meta.n,
                meta.seed,
                meta.policy,
                meta.c_fixed,
                meta.c_wireless,
                meta.c_search
            );
        }
        let m = &self.metrics;
        println!(
            "  events: {} ({} kinds); span {}..{}",
            self.events,
            m.by_kind.len(),
            SimTime::ZERO,
            self.last.0
        );
        println!(
            "  messages: fixed={} wireless={} (up={} down={} bcast={}) searches={} (re={} failed={}) lost={}",
            m.fixed_msgs.get(),
            m.wireless_msgs.get(),
            m.kind_count("up_send"),
            m.kind_count("down_send"),
            m.kind_count("cell_broadcast"),
            m.kind_count("search"),
            self.re_searches,
            m.kind_count("search_fail"),
            m.kind_count("down_lost"),
        );
        println!(
            "  mobility: moves={} handoffs={} disconnects={} reconnects={} doze_interrupts={}",
            m.kind_count("handoff_end"),
            self.handoffs,
            m.kind_count("disconnect"),
            m.kind_count("reconnect"),
            m.kind_count("doze_interrupt"),
        );
        if let Some((s, _)) = self.summary {
            println!(
                "  ledger: total_cost={} total_energy={}",
                s.total_cost, s.total_energy
            );
            let completions = m.kind_count("cs_exit");
            if completions > 0 {
                let measured = s.total_cost as f64 / completions as f64;
                let predicted = self
                    .predicted_cost()
                    .map_or("-".to_owned(), |p| p.to_string());
                println!(
                    "  cs: requests={} completions={} cost/execution: measured={measured:.2} predicted={predicted}",
                    m.kind_count("cs_request"),
                    completions,
                );
                println!(
                    "  cs wait: mean={:.1} p95<={} max={}   hold: mean={:.1} max={}",
                    m.cs_wait.mean(),
                    m.cs_wait.quantile(0.95),
                    m.cs_wait.max(),
                    m.cs_hold.mean(),
                    m.cs_hold.max(),
                );
            }
        }
        let faults = m.kind_count("fault_crash")
            + m.kind_count("fault_partition")
            + m.kind_count("fault_storm");
        if faults > 0 {
            println!(
                "  faults: crashes={} recovers={} partitions={} heals={} storms={}",
                m.kind_count("fault_crash"),
                m.kind_count("fault_recover"),
                self.partitions_raised,
                self.partitions_healed,
                m.kind_count("fault_storm"),
            );
        }
        if m.handoff_gap.count() > 0 {
            println!(
                "  handoff gap: mean={:.1} p95<={} max={}",
                m.handoff_gap.mean(),
                m.handoff_gap.quantile(0.95),
                m.handoff_gap.max(),
            );
        }
        let lv = m.kind_count("lv_update");
        let proxy = m.kind_count("proxy_forward");
        let batches = m.kind_count("combine_batch");
        if lv + proxy + batches > 0 {
            print!("  algorithm: lv_updates={lv} proxy_forwards={proxy}");
            if batches > 0 {
                print!(
                    " combine_batches={batches} (mean size {:.2})",
                    self.combined_outputs as f64 / batches as f64
                );
            }
            println!();
        }
        if hist {
            if self.wireless_gaps.count() > 0 {
                println!("  wireless send inter-arrival (ticks):");
                print!("{}", self.wireless_gaps);
            }
            if self.fixed_gaps.count() > 0 {
                println!("  fixed send inter-arrival (ticks):");
                print!("{}", self.fixed_gaps);
            }
            if m.cs_wait.count() > 0 {
                println!("  cs wait (ticks):");
                print!("{}", m.cs_wait);
            }
        }
        println!();
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        print!("{HELP}");
        return if args.is_empty() {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }
    let check = args.iter().any(|a| a == "--check");
    let hist = !args.iter().any(|a| a == "--no-hist");
    let files: Vec<&String> = args.iter().filter(|a| !a.starts_with('-')).collect();
    if files.is_empty() {
        eprintln!("tracereport: no trace files given (see --help)");
        return ExitCode::FAILURE;
    }

    // Run id -> accumulator, insertion-ordered so reports follow the file.
    let mut order: Vec<u64> = Vec::new();
    let mut runs: std::collections::BTreeMap<u64, RunAcc> = std::collections::BTreeMap::new();
    let mut parse_errors = 0u64;
    let mut total_lines = 0u64;

    for path in &files {
        let file = match std::fs::File::open(path) {
            Ok(f) => std::io::BufReader::new(f),
            Err(e) => {
                eprintln!("tracereport: cannot open {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        for (lineno, line) in file.lines().enumerate() {
            let line = match line {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("{path}:{}: read error: {e}", lineno + 1);
                    return ExitCode::FAILURE;
                }
            };
            if line.trim().is_empty() {
                continue;
            }
            total_lines += 1;
            match parse_line(&line) {
                Ok(Line::RunBegin(meta)) => {
                    let run = meta.run;
                    let acc = runs.entry(run).or_insert_with(RunAcc::new);
                    if acc.meta.replace(meta).is_some() {
                        acc.errors.push("duplicate run_begin".to_owned());
                    }
                    if !order.contains(&run) {
                        order.push(run);
                    }
                }
                Ok(Line::Event { run, seq, t, ev }) => {
                    runs.entry(run)
                        .or_insert_with(RunAcc::new)
                        .observe(seq, t, &ev);
                }
                Ok(Line::RunEnd { summary, events }) => {
                    let acc = runs.entry(summary.run).or_insert_with(RunAcc::new);
                    if acc.summary.replace((summary, events)).is_some() {
                        acc.errors.push("duplicate run_end".to_owned());
                    }
                }
                Err(e) => {
                    parse_errors += 1;
                    eprintln!("{path}:{}: {e}", lineno + 1);
                }
            }
        }
    }

    if check {
        let mut failed = parse_errors > 0;
        for (run, acc) in runs.iter_mut() {
            acc.check_against_summary();
            for e in &acc.errors {
                eprintln!("run {run}: {e}");
                failed = true;
            }
        }
        if failed {
            eprintln!("tracereport --check: FAILED");
            return ExitCode::FAILURE;
        }
        let events: u64 = runs.values().map(|a| a.events).sum();
        println!(
            "tracereport --check: OK — {} lines, {} runs, {events} events, schema v{SCHEMA_VERSION}, all counts match the ledger",
            total_lines,
            runs.len(),
        );
        return ExitCode::SUCCESS;
    }

    for run in order {
        if let Some(acc) = runs.get(&run) {
            acc.print_report(run, hist);
        }
    }
    if parse_errors > 0 {
        eprintln!("tracereport: {parse_errors} malformed lines skipped");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
