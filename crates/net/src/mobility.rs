//! Mobility and disconnection processes.
//!
//! Host mobility in the model is *asynchronous*: an MH may leave its cell at
//! any time, spends an unbounded-but-finite interval between cells, and then
//! joins some cell. Disconnection is voluntary (announced with
//! `disconnect(r)`) and differs from a move in that reconnection is not
//! guaranteed by the model — our process reconnects after a configurable
//! down-time so experiments terminate, but the *algorithms never rely on it*.
//!
//! # The mobility model zoo
//!
//! [`MovePattern`] selects how a moving MH chooses its destination cell.
//! Beyond the original uniform and locality-biased processes, the zoo covers
//! the synthetic families the MANET literature evaluates against (see
//! SCENARIOS.md for the full reference):
//!
//! * [`MovePattern::RandomWaypoint`] — hosts pick a waypoint cell and walk
//!   toward it one ring-step per move, re-targeting every `leg` moves;
//! * [`MovePattern::GaussMarkov`] — direction-persistent ring walk whose
//!   heading survives each move with probability `memory`;
//! * [`MovePattern::GroupPlatoon`] — hosts belong to platoons that drift
//!   toward a shared anchor cell, with per-move defection probability
//!   `1 − p_follow`.
//!
//! Every pattern is **stateless**: the destination is a pure function of the
//! decision's [`MoveCtx`] (host id, current cell, era counter, root seed) and
//! the per-decision [`SimRng`] passed in. This is what lets the space-sharded
//! kernel (`shard.rs`) replay any individual decision on any worker and stay
//! bit-identical at every `--shards N`.

use crate::ids::{MhId, MssId};
use crate::rng::SimRng;

/// Everything a [`MovePattern`] may condition a destination choice on.
///
/// The struct is the *entire* observable state of a decision: patterns hold
/// no mutable fields, so two kernels that present the same `MoveCtx` and an
/// equivalently-seeded rng compute the same destination regardless of how
/// hosts are partitioned across workers.
#[derive(Debug, Clone, Copy)]
pub struct MoveCtx {
    /// The moving host.
    pub mh: MhId,
    /// The cell being left.
    pub from: MssId,
    /// Total number of cells, `M`.
    pub m: usize,
    /// The host's home cell (placement-time cell; anchor for locality bias).
    pub home: MssId,
    /// Monotone per-host decision counter: the generic kernel passes the
    /// host's epoch (bumped on every leave and disconnect), the sharded
    /// kernel its per-host decision counter. Stateless patterns derive
    /// waypoints / headings / anchors from `(seed, mh, era)` so trajectories
    /// persist across moves without any stored state.
    pub era: u64,
    /// The run's root seed
    /// ([`NetworkConfig::seed`](crate::config::NetworkConfig::seed)), so
    /// derived choices are stable per run but decorrelated across seeds.
    pub seed: u64,
}

/// Stateless mix of up to three words into a well-scrambled 64-bit value
/// (SplitMix64 finalizer over distinct odd-multiplier combinations). Used to
/// derive per-host waypoints, headings and platoon anchors without storing
/// per-host trajectory state.
#[inline]
fn derive(seed: u64, tag: u64, a: u64, b: u64) -> u64 {
    let mut x = seed
        ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ a.wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
        ^ b.wrapping_mul(0x2545_F491_4F6C_DD1D);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// `[0, 1)` with 53 bits of precision from a derived word.
#[inline]
fn derive_unit(seed: u64, tag: u64, a: u64, b: u64) -> f64 {
    (derive(seed, tag, a, b) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Domain-separation tags for [`derive`].
const TAG_WAYPOINT: u64 = 1;
const TAG_WAYPOINT_ALT: u64 = 2;
const TAG_GM_TURN: u64 = 3;
const TAG_GM_DIR: u64 = 4;
const TAG_PLATOON: u64 = 5;

/// One ring-step from `from` toward `to` along the shorter arc
/// (ties break toward increasing cell ids). Requires `m > 1`.
#[inline]
fn step_toward(from: MssId, to: MssId, m: usize) -> MssId {
    let m = m as u32;
    let fwd = (to.0 + m - from.0) % m;
    let bwd = (from.0 + m - to.0) % m;
    if fwd <= bwd {
        MssId((from.0 + 1) % m)
    } else {
        MssId((from.0 + m - 1) % m)
    }
}

/// How a moving MH chooses its next cell.
///
/// All patterns guarantee a destination **different from the current cell**
/// whenever `M > 1` (a "move" that stays put would skip the handoff
/// choreography the experiments measure). With `M == 1` the only cell is
/// returned unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum MovePattern {
    /// Uniformly random among the other `M − 1` cells. The default.
    #[default]
    UniformRandom,
    /// Locality-biased: with probability `p_local` the MH moves within its
    /// `home_span` consecutive home cells (wrapping), otherwise uniformly
    /// anywhere. High `p_local` keeps group members concentrated in few
    /// cells, which is the regime where location views shine (E6).
    Locality {
        /// Probability of staying within the home span (dimensionless,
        /// clamped to `[0, 1]` at draw time; no default — experiments opt
        /// in).
        p_local: f64,
        /// Number of consecutive cells forming the home neighbourhood
        /// (clamped to `1..=M` at draw time).
        home_span: usize,
    },
    /// Random-waypoint on the cell ring: every `leg` moves the host derives
    /// a fresh waypoint cell from `(seed, mh, era / leg)` and each move
    /// steps one cell along the shorter arc toward it. Produces the
    /// classic spatially-correlated trajectories (and the center-bias
    /// analogue: waypoints are uniform, so paths cross the ring's middle
    /// cells more often than edge-dwelling patterns would).
    RandomWaypoint {
        /// Number of moves spent walking toward one waypoint before
        /// re-targeting (clamped to at least 1). Unit: moves, not ticks —
        /// wall-clock leg length is `leg × mean_dwell` on average.
        leg: u32,
    },
    /// Gauss–Markov direction persistence on the cell ring: each move steps
    /// one cell in the current heading (+1 or −1), and the heading survives
    /// a move with probability `memory`. `memory = 0` degenerates to a
    /// per-move random ±1 walk, `memory → 1` to near-straight circulation.
    GaussMarkov {
        /// Probability that a move keeps the previous heading
        /// (dimensionless, clamped to `[0, 1]` at draw time). The
        /// literature's tuning parameter α.
        memory: f64,
    },
    /// Group (platoon) mobility: host `mh` belongs to platoon
    /// `mh mod groups`, and every platoon has a shared anchor cell derived
    /// from `(seed, platoon, era / 8)`. With probability `p_follow` a move
    /// steps one cell toward the platoon's current anchor; otherwise the
    /// host defects to a uniformly random other cell. Hosts with similar
    /// move counts converge on the anchor, concentrating each platoon in a
    /// few adjacent cells.
    GroupPlatoon {
        /// Number of platoons (clamped to at least 1). Hosts are assigned
        /// round-robin by id.
        groups: u32,
        /// Probability that a move follows the platoon anchor rather than
        /// defecting to a random cell (dimensionless, clamped to `[0, 1]`
        /// at draw time).
        p_follow: f64,
    },
}

/// Number of moves a platoon anchor stays put before re-deriving
/// ([`MovePattern::GroupPlatoon`]).
const PLATOON_ANCHOR_BLOCK: u64 = 8;

impl MovePattern {
    /// Chooses the next cell for the decision described by `ctx`, drawing
    /// any per-decision randomness from `rng`.
    ///
    /// Always returns a cell different from `ctx.from` when `ctx.m > 1`;
    /// returns `ctx.from` when `ctx.m == 1`.
    ///
    /// Determinism contract: the result depends only on `ctx` and the state
    /// of `rng` — patterns hold no mutable state. The legacy patterns
    /// (`UniformRandom`, `Locality`) consume exactly the same rng draws as
    /// they always have; the zoo patterns additionally condition on
    /// `(ctx.seed, ctx.mh, ctx.era)` through a stateless hash.
    pub fn next_cell(&self, rng: &mut SimRng, ctx: MoveCtx) -> MssId {
        let MoveCtx {
            mh,
            from,
            m,
            home,
            era,
            seed,
        } = ctx;
        if m <= 1 {
            return from;
        }
        match *self {
            MovePattern::UniformRandom => {
                let mut c = MssId(rng.below(m as u64) as u32);
                if c == from {
                    c = MssId((c.0 + 1) % m as u32);
                }
                c
            }
            MovePattern::Locality { p_local, home_span } => {
                let span = home_span.clamp(1, m);
                if rng.chance(p_local) && span > 1 {
                    // Pick within the wrapped home neighbourhood, avoiding `from`.
                    for _ in 0..8 {
                        let off = rng.below(span as u64) as u32;
                        let c = MssId((home.0 + off) % m as u32);
                        if c != from {
                            return c;
                        }
                    }
                    MssId((home.0 + 1) % m as u32)
                } else {
                    MovePattern::UniformRandom.next_cell(rng, ctx)
                }
            }
            MovePattern::RandomWaypoint { leg } => {
                let leg = leg.max(1) as u64;
                let block = era / leg;
                let wp = MssId((derive(seed, TAG_WAYPOINT, mh.0 as u64, block) % m as u64) as u32);
                let target = if wp == from {
                    // Parked at the waypoint mid-leg: head toward an
                    // alternate waypoint so the move still changes cells.
                    let alt = MssId(
                        (derive(seed, TAG_WAYPOINT_ALT, mh.0 as u64, block) % m as u64) as u32,
                    );
                    if alt == from {
                        return MssId((from.0 + 1) % m as u32);
                    }
                    alt
                } else {
                    wp
                };
                step_toward(from, target, m)
            }
            MovePattern::GaussMarkov { memory } => {
                let memory = memory.clamp(0.0, 1.0);
                // The heading set at era t survives each later era with
                // probability `memory`; find the most recent turn point at
                // or before this era (bounded back-scan, era 0 and the scan
                // horizon are forced turns) and reuse its heading.
                let mut turn = era.saturating_sub(63);
                let lo = turn;
                for t in (lo..=era).rev() {
                    if t == 0 || derive_unit(seed, TAG_GM_TURN, mh.0 as u64, t) >= memory {
                        turn = t;
                        break;
                    }
                }
                let dir_up = derive(seed, TAG_GM_DIR, mh.0 as u64, turn) & 1 == 0;
                let m = m as u32;
                if dir_up {
                    MssId((from.0 + 1) % m)
                } else {
                    MssId((from.0 + m - 1) % m)
                }
            }
            MovePattern::GroupPlatoon { groups, p_follow } => {
                let platoon = mh.0 as u64 % groups.max(1) as u64;
                let block = era / PLATOON_ANCHOR_BLOCK;
                let anchor = MssId((derive(seed, TAG_PLATOON, platoon, block) % m as u64) as u32);
                if rng.chance(p_follow) && anchor != from {
                    step_toward(from, anchor, m)
                } else {
                    MovePattern::UniformRandom.next_cell(rng, ctx)
                }
            }
        }
    }
}

/// Configuration of the autonomous mobility process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MobilityConfig {
    /// Whether MHs move autonomously at all. Default `false` (experiments
    /// opt in with their own rates).
    pub enabled: bool,
    /// Mean dwell time in a cell before leaving, in ticks (exponentially
    /// distributed, minimum 1). Default 500.
    pub mean_dwell: u64,
    /// Mean time between leaving one cell and joining the next, in ticks
    /// (exponentially distributed, minimum 1). Default 20.
    pub mean_gap: u64,
    /// Destination-cell choice. Default [`MovePattern::UniformRandom`].
    pub pattern: MovePattern,
}

impl Default for MobilityConfig {
    /// Mobility disabled (experiments opt in with their own rates).
    fn default() -> Self {
        MobilityConfig {
            enabled: false,
            mean_dwell: 500,
            mean_gap: 20,
            pattern: MovePattern::default(),
        }
    }
}

impl MobilityConfig {
    /// An enabled process with the given mean dwell time (ticks) and
    /// defaults elsewhere (`mean_gap = 20`, uniform destination choice).
    pub fn moving(mean_dwell: u64) -> Self {
        MobilityConfig {
            enabled: true,
            mean_dwell,
            ..MobilityConfig::default()
        }
    }

    /// Replaces the destination-cell pattern.
    pub fn with_pattern(mut self, pattern: MovePattern) -> Self {
        self.pattern = pattern;
        self
    }
}

/// Configuration of the voluntary disconnection process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DisconnectConfig {
    /// Whether MHs disconnect autonomously. Default `false`.
    pub enabled: bool,
    /// Mean connected time before a disconnection, in ticks (exponentially
    /// distributed, minimum 1). Default 2000.
    pub mean_uptime: u64,
    /// Mean disconnected duration before reconnecting, in ticks
    /// (exponentially distributed, minimum 1). Default 200.
    pub mean_downtime: u64,
    /// Probability that the MH supplies its previous MSS id on `reconnect()`
    /// (otherwise the new MSS must query every fixed host — the paper's
    /// fallback — which the kernel charges as a flood). Dimensionless,
    /// clamped to `[0, 1]` at draw time. Default 1.0 (always supplied).
    pub p_supply_prev: f64,
}

impl Default for DisconnectConfig {
    /// Disconnection disabled.
    fn default() -> Self {
        DisconnectConfig {
            enabled: false,
            mean_uptime: 2_000,
            mean_downtime: 200,
            p_supply_prev: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(mh: u32, from: u32, m: usize, home: u32, era: u64, seed: u64) -> MoveCtx {
        MoveCtx {
            mh: MhId(mh),
            from: MssId(from),
            m,
            home: MssId(home),
            era,
            seed,
        }
    }

    #[test]
    fn uniform_never_returns_current_cell() {
        let mut rng = SimRng::seed_from(5);
        let p = MovePattern::UniformRandom;
        for _ in 0..200 {
            let c = p.next_cell(&mut rng, ctx(0, 3, 8, 0, 0, 5));
            assert_ne!(c, MssId(3));
            assert!(c.0 < 8);
        }
    }

    #[test]
    fn single_cell_system_cannot_move() {
        let mut rng = SimRng::seed_from(5);
        for p in [
            MovePattern::UniformRandom,
            MovePattern::RandomWaypoint { leg: 4 },
            MovePattern::GaussMarkov { memory: 0.9 },
            MovePattern::GroupPlatoon {
                groups: 2,
                p_follow: 0.9,
            },
        ] {
            assert_eq!(p.next_cell(&mut rng, ctx(0, 0, 1, 0, 7, 5)), MssId(0));
        }
    }

    #[test]
    fn locality_concentrates_moves() {
        let mut rng = SimRng::seed_from(6);
        let p = MovePattern::Locality {
            p_local: 0.95,
            home_span: 3,
        };
        let home = MssId(4);
        let m = 16;
        let mut in_home = 0;
        let total = 400;
        let mut cur = home;
        for era in 0..total {
            let c = p.next_cell(&mut rng, ctx(1, cur.0, m, home.0, era, 6));
            assert_ne!(c, cur);
            let off = (c.0 + m as u32 - home.0) % m as u32;
            if off < 3 {
                in_home += 1;
            }
            cur = c;
        }
        assert!(
            in_home as f64 / total as f64 > 0.7,
            "only {in_home}/{total} moves stayed in the home span"
        );
    }

    #[test]
    fn locality_with_zero_p_is_uniform_spread() {
        let mut rng = SimRng::seed_from(7);
        let p = MovePattern::Locality {
            p_local: 0.0,
            home_span: 2,
        };
        let mut cells = std::collections::BTreeSet::new();
        for _ in 0..300 {
            cells.insert(p.next_cell(&mut rng, ctx(0, 0, 6, 0, 0, 7)));
        }
        assert!(cells.len() >= 5, "expected wide spread, saw {cells:?}");
    }

    #[test]
    fn config_defaults_are_disabled() {
        assert!(!MobilityConfig::default().enabled);
        assert!(!DisconnectConfig::default().enabled);
        let m = MobilityConfig::moving(100);
        assert!(m.enabled);
        assert_eq!(m.mean_dwell, 100);
    }

    /// The legacy patterns must keep their exact draw sequence: pin a few
    /// uniform destinations against hand-derived values from the seed.
    #[test]
    fn uniform_draw_sequence_is_unchanged() {
        let mut rng = SimRng::seed_from(5);
        let mut expect = SimRng::seed_from(5);
        let p = MovePattern::UniformRandom;
        for _ in 0..32 {
            let want = {
                let mut c = MssId(expect.below(8) as u32);
                if c == MssId(3) {
                    c = MssId((c.0 + 1) % 8);
                }
                c
            };
            assert_eq!(p.next_cell(&mut rng, ctx(0, 3, 8, 0, 0, 99)), want);
        }
    }

    #[test]
    fn waypoint_moves_are_single_ring_steps() {
        let mut rng = SimRng::seed_from(8);
        let p = MovePattern::RandomWaypoint { leg: 5 };
        let m = 12u32;
        let mut cur = MssId(0);
        for era in 0..200u64 {
            let c = p.next_cell(&mut rng, ctx(3, cur.0, m as usize, 0, era, 42));
            assert_ne!(c, cur);
            let d = (c.0 + m - cur.0) % m;
            assert!(d == 1 || d == m - 1, "waypoint step jumped {cur:?}→{c:?}");
            cur = c;
        }
    }

    #[test]
    fn waypoint_reaches_its_waypoint_within_a_leg() {
        // With leg ≥ M/2 the shorter-arc walk must arrive at the derived
        // waypoint before re-targeting; verify it parks nearby (alternate
        // target keeps it moving) rather than wandering off.
        let p = MovePattern::RandomWaypoint { leg: 16 };
        let m = 8usize;
        let mut rng = SimRng::seed_from(9);
        let wp = MssId((derive(4242, TAG_WAYPOINT, 7, 0) % m as u64) as u32);
        let mut cur = MssId((wp.0 + 4) % m as u32);
        let mut hit = false;
        for era in 0..16u64 {
            cur = p.next_cell(&mut rng, ctx(7, cur.0, m, 0, era, 4242));
            hit |= cur == wp;
        }
        assert!(hit, "never reached waypoint {wp:?}");
    }

    #[test]
    fn gauss_markov_high_memory_runs_straight() {
        let p = MovePattern::GaussMarkov { memory: 0.95 };
        let m = 32u32;
        let mut rng = SimRng::seed_from(10);
        let mut cur = MssId(0);
        let mut same_dir = 0u32;
        let mut prev_dir: Option<u32> = None;
        let total = 400u64;
        for era in 0..total {
            let c = p.next_cell(&mut rng, ctx(5, cur.0, m as usize, 0, era, 77));
            let d = (c.0 + m - cur.0) % m;
            assert!(d == 1 || d == m - 1);
            if prev_dir == Some(d) {
                same_dir += 1;
            }
            prev_dir = Some(d);
            cur = c;
        }
        // With memory 0.95 roughly 95% of consecutive moves share a heading.
        assert!(
            same_dir as f64 / (total - 1) as f64 > 0.85,
            "only {same_dir}/{total} consecutive moves kept heading"
        );
    }

    #[test]
    fn gauss_markov_is_a_pure_function_of_ctx() {
        // No rng draws are consumed: identical ctx ⇒ identical destination
        // even from rngs in different states.
        let p = MovePattern::GaussMarkov { memory: 0.5 };
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(999);
        let _ = b.next_u64();
        for era in 0..50u64 {
            let c = ctx(9, 4, 10, 0, era, 31);
            assert_eq!(p.next_cell(&mut a, c), p.next_cell(&mut b, c));
        }
    }

    #[test]
    fn platoon_followers_step_toward_the_shared_anchor() {
        // Mechanism check, deterministic: with p_follow = 1.0 a member that
        // is away from its platoon's anchor always takes one ring-step
        // toward it.
        let p = MovePattern::GroupPlatoon {
            groups: 2,
            p_follow: 1.0,
        };
        let m = 16usize;
        let seed = 13u64;
        for mh in [0u32, 2, 5, 7] {
            let mut rng = SimRng::seed_from(mh as u64 + 100);
            for era in 0..120u64 {
                let platoon = mh as u64 % 2;
                let anchor = MssId(
                    (derive(seed, TAG_PLATOON, platoon, era / PLATOON_ANCHOR_BLOCK) % m as u64)
                        as u32,
                );
                let from = MssId((anchor.0 + 5) % m as u32);
                let next = p.next_cell(&mut rng, ctx(mh, from.0, m, 0, era, seed));
                assert_eq!(next, step_toward(from, anchor, m));
            }
        }
    }

    #[test]
    fn platoon_members_concentrate_near_shared_anchor() {
        // Statistical check: members chasing the anchor average well under
        // the ≈4.27-cell mean distance a uniform mover keeps from any fixed
        // cell on a 16-ring. (Members bounce off the anchor when they reach
        // it — next_cell never returns the current cell — so they orbit it
        // rather than sit on it.)
        let p = MovePattern::GroupPlatoon {
            groups: 2,
            p_follow: 0.95,
        };
        let m = 16usize;
        let seed = 13u64;
        let (mut dist_sum, mut samples) = (0u64, 0u64);
        for mh in [0u32, 2, 4, 6] {
            let mut rng = SimRng::seed_from(mh as u64 + 100);
            let mut cur = MssId(mh % m as u32);
            for era in 0..400u64 {
                cur = p.next_cell(&mut rng, ctx(mh, cur.0, m, 0, era, seed));
                let anchor = MssId(
                    (derive(seed, TAG_PLATOON, 0, era / PLATOON_ANCHOR_BLOCK) % m as u64) as u32,
                );
                let d = (cur.0 + m as u32 - anchor.0) % m as u32;
                dist_sum += d.min(m as u32 - d) as u64;
                samples += 1;
            }
        }
        let mean = dist_sum as f64 / samples as f64;
        assert!(
            mean < 3.0,
            "mean anchor distance {mean:.2} not concentrated"
        );
    }

    #[test]
    fn zoo_patterns_never_return_current_cell() {
        for p in [
            MovePattern::RandomWaypoint { leg: 1 },
            MovePattern::RandomWaypoint { leg: 7 },
            MovePattern::GaussMarkov { memory: 0.0 },
            MovePattern::GaussMarkov { memory: 1.0 },
            MovePattern::GroupPlatoon {
                groups: 3,
                p_follow: 0.5,
            },
        ] {
            let mut rng = SimRng::seed_from(21);
            for era in 0..100u64 {
                for from in 0..5u32 {
                    let c = p.next_cell(&mut rng, ctx(era as u32 % 7, from, 5, 1, era, 3));
                    assert_ne!(c, MssId(from), "{p:?} era {era}");
                    assert!(c.0 < 5);
                }
            }
        }
    }
}
