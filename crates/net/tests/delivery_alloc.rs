//! Steady-state allocation discipline of the batched delivery engine.
//!
//! The delivery engine recycles everything it hands out — fan-out
//! destination vectors, downlink recipient lists, batch buffers — through
//! per-kernel pools, so once a run has warmed up, processing further
//! windows must allocate **nothing**. A counting global allocator pins
//! that: the whole-run allocation count of a quick E12-ladder point must
//! not change when the horizon doubles (every allocation happens during
//! construction and warm-up, none per processed window), and a
//! steady-state broadcast storm on the single-kernel path must allocate
//! zero once warm.

use mobidist_net::prelude::*;
use mobidist_net::shard::run_scale_with_mode;
use mobidist_net::time::SimTime;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Counts every allocation and reallocation made through the global
/// allocator. Frees are uncounted: the contract is about acquiring
/// memory in steady state, not returning it.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The two tests share one process-global counter; serialise them.
/// (Poisoning is irrelevant — the guard only provides mutual exclusion.)
static COUNTER_LOCK: Mutex<()> = Mutex::new(());

fn counter_guard() -> std::sync::MutexGuard<'static, ()> {
    COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn allocations_during<T>(f: impl FnOnce() -> T) -> (u64, T) {
    let before = ALLOCS.load(Ordering::SeqCst);
    let out = f();
    (ALLOCS.load(Ordering::SeqCst) - before, out)
}

/// An everlasting convergecast wave with constant message population:
/// MSS 0 broadcasts, every peer replies to MSS 0 (the `M - 1` replies land
/// on the same tick — exactly the shape the coalescer batches), and once
/// all replies are in, MSS 0 starts the next round. The payload is `Copy`
/// so nothing in the protocol itself allocates.
#[derive(Debug, Default)]
struct Wave {
    arrivals: u64,
    pending: u32,
}

/// Wave payloads: even = probe out, odd = reply back.
const PROBE: u32 = 0;
const REPLY: u32 = 1;

impl Protocol for Wave {
    type Msg = u32;
    type Timer = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, u32, ()>) {
        self.pending = ctx.num_mss() as u32 - 1;
        ctx.broadcast_fixed(MssId(0), PROBE);
    }

    fn on_mss_msg(&mut self, ctx: &mut Ctx<'_, u32, ()>, at: MssId, _: Src, msg: u32) {
        self.arrivals += 1;
        if msg == PROBE {
            ctx.send_fixed(at, MssId(0), REPLY);
        } else {
            self.pending -= 1;
            if self.pending == 0 {
                self.pending = ctx.num_mss() as u32 - 1;
                ctx.broadcast_fixed(MssId(0), PROBE);
            }
        }
    }

    fn on_mh_msg(&mut self, _: &mut Ctx<'_, u32, ()>, _: MhId, _: Src, _: u32) {}
}

#[test]
fn steady_state_broadcast_storm_allocates_nothing() {
    let _guard = counter_guard();
    let cfg = NetworkConfig::new(8, 16)
        .with_seed(5)
        .with_delivery(DeliveryMode::Batched);
    let mut sim = Simulation::new(cfg, Wave::default());
    // Warm-up: pools fill, wheel slots and channel buffers reach capacity.
    // Run past one full level-1 wrap of the timing wheel (2^16 ticks) so
    // even the rarest recycled buffer — the level-2 slot touched once per
    // wrap — has been through its first allocation.
    sim.run_until(SimTime::from_ticks(70_000));
    let warm_arrivals = sim.protocol().arrivals;
    assert!(warm_arrivals > 1_000, "storm failed to sustain itself");

    let (allocs, _) = allocations_during(|| sim.run_until(SimTime::from_ticks(200_000)));
    let processed = sim.protocol().arrivals - warm_arrivals;
    assert!(processed > 4_000, "storm died after warm-up");
    assert_eq!(
        allocs, 0,
        "steady-state windows must be allocation-free, got {allocs} \
         allocations over {processed} deliveries"
    );
}

#[test]
fn e12_ladder_point_allocations_are_horizon_invariant() {
    let _guard = counter_guard();
    // The quick-E12 ladder's smallest point (1000 hosts over 64 cells,
    // seed 1202), run single-sharded so thread plumbing stays out of the
    // count. Whole-run allocations plateau once every recycled buffer —
    // lane double-buffers, wheel slot deques, fan-out pools — has hit its
    // occupancy high-water mark (~16k ticks for this spec); past that,
    // extending the horizon must not allocate once more.
    let spec = |horizon| {
        ScaleSpec::new(64, 1_000)
            .with_seed(1202)
            .with_horizon(horizon)
    };
    // Warm the process itself (lazy statics, thread-locals) out of the
    // measurement.
    let _ = run_scale_with_mode(&spec(500), 1, DeliveryMode::Batched);

    let (base, short) =
        allocations_during(|| run_scale_with_mode(&spec(20_000), 1, DeliveryMode::Batched));
    let (extended, long) =
        allocations_during(|| run_scale_with_mode(&spec(24_000), 1, DeliveryMode::Batched));
    assert!(
        long.events > short.events,
        "longer horizon must do more work"
    );
    assert_eq!(
        extended, base,
        "extending the horizon past warm-up changed the allocation count \
         ({base} -> {extended}): some per-window path still allocates"
    );
}
