//! Deterministic fan-out of independent simulation runs.
//!
//! Every simulation run is fully determined by its `(config, seed)` pair, so
//! an experiment sweep is embarrassingly parallel: [`map_indexed`] fans the
//! work items across `std::thread::scope` workers and collects results **by
//! input index**, so the assembled output — and therefore every experiment
//! table — is byte-identical to the sequential path regardless of worker
//! count or scheduling. `--jobs 1` (or `MOBIDIST_JOBS=1`) falls back to a
//! plain in-thread loop.
//!
//! No external crates: work distribution is a mutex-guarded deque drained in
//! small adaptive chunks (up to 4 items per lock acquisition while the queue
//! is long, one-at-a-time near the tail for load balance) and results travel
//! over `std::sync::mpsc`.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::Mutex;

/// Worker count to use: `MOBIDIST_JOBS` when set (clamped to ≥ 1),
/// otherwise the machine's available parallelism.
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var("MOBIDIST_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// True when spreading work over `jobs` threads would oversubscribe the
/// machine: more than one worker contending for a single hardware thread.
///
/// On a 1-CPU box the fan-out buys no concurrency and the queue/channel
/// overhead plus context switches make "parallel" runs *slower* than the
/// sequential loop (the sub-1× speedups `perfreport` used to record).
/// [`map_indexed_with`] consults this to fall back to the sequential path —
/// which is byte-identical by the ordering guarantee — and `perfreport`
/// uses it to mark sweep rows instead of reporting misleading slowdowns.
pub fn oversubscribed(jobs: usize) -> bool {
    jobs > 1 && std::thread::available_parallelism().map_or(1, |n| n.get()) == 1
}

/// Applies `f` to every `(index, item)` pair on up to `jobs` scoped worker
/// threads and returns the results **in input order**.
///
/// Ordering guarantee: the output vector at position `i` holds
/// `f(i, items[i])` exactly as the sequential loop would produce it; thread
/// scheduling can never reorder, duplicate or drop a slot. A panic in any
/// worker propagates once the scope joins.
///
/// # Examples
///
/// ```
/// use mobidist_bench::parallel::map_indexed;
/// let doubled = map_indexed(vec![1, 2, 3], 4, |_, x| x * 2);
/// assert_eq!(doubled, vec![2, 4, 6]);
/// ```
pub fn map_indexed<I, T>(items: Vec<I>, jobs: usize, f: impl Fn(usize, I) -> T + Sync) -> Vec<T>
where
    I: Send,
    T: Send,
{
    map_indexed_with(items, jobs, || (), |(), i, x| f(i, x))
}

/// [`map_indexed`] with per-worker scratch state.
///
/// Each worker thread (and the sequential fallback) builds one `W` with
/// `make_state` and threads it through every item it processes. Sweeps pass a
/// [`SimPool`](mobidist_net::prelude::SimPool) here so consecutive points on
/// the same worker recycle one simulation's allocations instead of
/// rebuilding them.
///
/// The ordering guarantee of [`map_indexed`] is unchanged, and `W` must not
/// influence results (a pool doesn't: a reset simulation replays
/// byte-identically) — which worker processes which item is scheduling-
/// dependent.
///
/// # Examples
///
/// ```
/// use mobidist_bench::parallel::map_indexed_with;
/// // Per-worker scratch buffer, reused across items on the same worker.
/// let out = map_indexed_with(
///     vec![3u64, 1, 2],
///     2,
///     Vec::new,
///     |buf: &mut Vec<u64>, i, x| {
///         buf.clear();
///         buf.extend(0..x);
///         buf.len() as u64 + i as u64
///     },
/// );
/// assert_eq!(out, vec![3, 2, 4]);
/// ```
pub fn map_indexed_with<I, T, W>(
    items: Vec<I>,
    jobs: usize,
    make_state: impl Fn() -> W + Sync,
    f: impl Fn(&mut W, usize, I) -> T + Sync,
) -> Vec<T>
where
    I: Send,
    T: Send,
{
    let n = items.len();
    let mut jobs = jobs.max(1).min(n.max(1));
    if oversubscribed(jobs) {
        // Spawning threads a 1-CPU machine must time-slice only adds
        // overhead; the sequential path produces the same bytes.
        jobs = 1;
    }
    if jobs == 1 || n <= 1 {
        // Sequential fallback: the reference path parallel runs must match.
        let mut w = make_state();
        return items
            .into_iter()
            .enumerate()
            .map(|(i, x)| f(&mut w, i, x))
            .collect();
    }
    let queue: Mutex<VecDeque<(usize, I)>> = Mutex::new(items.into_iter().enumerate().collect());
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    std::thread::scope(|s| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let queue = &queue;
            let f = &f;
            let make_state = &make_state;
            s.spawn(move || {
                let mut w = make_state();
                // Pop work in small adaptive chunks: one lock acquisition
                // per chunk instead of per item cuts queue overhead on
                // fast items, while the `q.len() / (jobs * 2)` bound keeps
                // the tail balanced — near the end of the queue workers
                // fall back to one-at-a-time. Results still carry their
                // input index, so the ordering guarantee is untouched.
                let mut batch = Vec::with_capacity(4);
                'work: loop {
                    {
                        let mut q = queue.lock().expect("work queue poisoned");
                        if q.is_empty() {
                            break;
                        }
                        let take = (q.len() / (jobs * 2)).clamp(1, 4);
                        batch.extend(q.drain(..take));
                    }
                    for (i, x) in batch.drain(..) {
                        if tx.send((i, f(&mut w, i, x))).is_err() {
                            break 'work;
                        }
                    }
                }
            });
        }
        drop(tx);
        let mut out: Vec<Option<T>> = std::iter::repeat_with(|| None).take(n).collect();
        for (i, r) in rx {
            debug_assert!(out[i].is_none(), "index {i} produced twice");
            out[i] = Some(r);
        }
        out.into_iter()
            .map(|o| o.expect("every index produced exactly once"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_input_order() {
        // Make later items finish first: result order must still be stable.
        let items: Vec<u64> = (0..32).collect();
        let out = map_indexed(items, 8, |_, x| {
            std::thread::sleep(std::time::Duration::from_micros(200 * (32 - x)));
            x * 10
        });
        assert_eq!(out, (0..32).map(|x| x * 10).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let work = |i: usize, x: u64| (i as u64) * 1000 + x * x;
        let items: Vec<u64> = (0..50).collect();
        let seq = map_indexed(items.clone(), 1, work);
        let par = map_indexed(items, 7, work);
        assert_eq!(seq, par);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = map_indexed((0..100usize).collect(), 4, |i, x| {
            calls.fetch_add(1, Ordering::Relaxed);
            assert_eq!(i, x);
            x
        });
        assert_eq!(out.len(), 100);
        assert_eq!(calls.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u8> = map_indexed(Vec::new(), 8, |_, x: u8| x);
        assert!(empty.is_empty());
        assert_eq!(map_indexed(vec![9], 8, |_, x| x + 1), vec![10]);
    }

    #[test]
    fn per_worker_state_is_isolated_and_reused() {
        // Each worker's counter only ever increments within that worker, so
        // every produced value equals the number of items that worker has
        // processed so far — and the sum over all items of "first time this
        // counter value was seen per worker" is consistent. The observable
        // contract: outputs are deterministic per (worker history), and
        // sequential (jobs=1) reuses a single state across all items.
        let seq = map_indexed_with(
            (0..10u64).collect(),
            1,
            || 0u64,
            |c, _, _| {
                *c += 1;
                *c
            },
        );
        assert_eq!(seq, (1..=10).collect::<Vec<_>>());
        let par = map_indexed_with(
            (0..100u64).collect(),
            4,
            || 0u64,
            |c, _, _| {
                *c += 1;
                *c
            },
        );
        // Across workers, each state starts at zero and increments by one
        // per item: the multiset of outputs partitions 100 items into at
        // most 4 runs of 1..=k.
        assert_eq!(par.len(), 100);
        assert!(par.iter().all(|&v| (1..=100).contains(&v)));
    }

    #[test]
    fn default_jobs_respects_env_floor() {
        // Whatever the environment, the contract is jobs >= 1.
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn oversubscription_is_about_extra_threads() {
        // One worker can never oversubscribe, whatever the machine; more
        // than one only oversubscribes a single-CPU box, so the two sides
        // of the predicate must agree with the machine's parallelism.
        assert!(!oversubscribed(0));
        assert!(!oversubscribed(1));
        let single_cpu = std::thread::available_parallelism().map_or(1, |n| n.get()) == 1;
        assert_eq!(oversubscribed(2), single_cpu);
        assert_eq!(oversubscribed(64), single_cpu);
    }
}
