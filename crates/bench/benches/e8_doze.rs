//! Regenerates E8: doze-mode interruptions, R1 vs R2'.
fn main() {
    let quick = std::env::var_os("MOBIDIST_QUICK").is_some();
    println!("{}", mobidist_bench::exp_mutex::e8_doze(quick));
}
