//! **Location view** (Section 4.3): group location kept on the static
//! network, at cell granularity.
//!
//! For a group `G`, the *location view* `LV(G)` is the set of MSSs that have
//! at least one member in their cell. Each MSS in the view keeps a copy of
//! `LV(G)` and the list of local members; a designated *coordinator* MSS
//! serialises view changes so every copy applies updates in the same order
//! (the static network's FIFO channels make this sufficient).
//!
//! Only *significant* moves change the view: a member entering a cell
//! outside `LV(G)`, or the last member leaving a cell in `LV(G)`. The
//! update protocol is the paper's: the new MSS `M` (told the previous MSS
//! `M'` by the join's handoff) asks `M'` to notify the coordinator; `M'`
//! sends a combined add/delete request; the coordinator forwards incremental
//! updates to the view and a full copy to a newly added `M` — at most
//! `(|LV| + 3) · C_fixed` per significant move.
//!
//! A group message costs one wireless uplink, `|LV| − 1` fixed hops, and one
//! wireless downlink per recipient: the static-network message count is
//! proportional to `|LV(G)|`, not `|G|`, and the *effective* cost depends
//! only on the significant fraction `f` of the mobility-to-message ratio.

use crate::strategy::{GroupCtx, LocationStrategy};
use mobidist_net::ids::{MhId, MssId};
use mobidist_net::proto::Src;
use std::collections::{BTreeMap, BTreeSet};

/// Location-view protocol messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LvMsg {
    /// Uplink: a member submits a group message.
    GroupSend {
        /// The group message id.
        msg_id: u64,
    },
    /// Fixed: fan-out of a group message to a view MSS.
    GroupFwd {
        /// The group message id.
        msg_id: u64,
        /// The original sender (never delivered back to itself).
        sender: MhId,
    },
    /// Fixed: a cell without a view copy relays the send via the
    /// coordinator (transient, while its own add is still propagating).
    RelayViaCoord {
        /// The group message id.
        msg_id: u64,
        /// The original sender.
        sender: MhId,
        /// The cell the send came from (receives the fan-out too).
        origin: MssId,
    },
    /// Downlink: deliver to a local member.
    GroupDeliver {
        /// The group message id.
        msg_id: u64,
    },
    /// Fixed, new MSS → previous MSS: a member arrived here; decide whether
    /// the coordinator must be told (the paper's handoff step).
    HandoffNotify {
        /// The member that moved.
        mh: MhId,
        /// The cell it moved into.
        new_mss: MssId,
    },
    /// Fixed, previous MSS → coordinator: combined add/delete request.
    ViewChange {
        /// Cell to add to the view, if any.
        add: Option<MssId>,
        /// Cell to delete from the view, if any.
        del: Option<MssId>,
    },
    /// Fixed, coordinator → newly added MSS: the latest full view.
    ViewCopy {
        /// The view contents.
        view: Vec<MssId>,
    },
    /// Fixed, coordinator → view members: incremental addition.
    ViewAdd {
        /// The added cell.
        mss: MssId,
    },
    /// Fixed, coordinator → view members: incremental deletion.
    ViewDel {
        /// The removed cell.
        mss: MssId,
    },
}

/// The location-view strategy. See the module docs.
#[derive(Debug)]
pub struct LocationView {
    members: BTreeSet<MhId>,
    coordinator: MssId,
    /// The coordinator's master copy of LV(G).
    master: BTreeSet<MssId>,
    /// Per-MSS copies of LV(G) (present only at view members… and the
    /// coordinator, which always tracks the master).
    copies: BTreeMap<MssId, BTreeSet<MssId>>,
    /// Group members local to each cell (strategy-side bookkeeping fed by
    /// the join/leave hooks — the MSS "list of local MHs that belong to G").
    local_members: BTreeMap<MssId, BTreeSet<MhId>>,
    /// Largest view size observed.
    max_view: usize,
    /// Significant moves (view actually changed).
    significant: u64,
    /// All member moves seen.
    moves: u64,
    /// Deliver with one cell-wide broadcast per view cell instead of one
    /// downlink per member (ablation; non-members overhear and discard).
    cell_broadcast: bool,
    /// Sender of each group message (so broadcast receivers can discard
    /// their own copies and bystanders theirs).
    sender_of: BTreeMap<u64, MhId>,
}

impl LocationView {
    /// Creates the strategy with the given coordinator MSS.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn new(members: Vec<MhId>, coordinator: MssId) -> Self {
        assert!(!members.is_empty(), "a group needs members");
        LocationView {
            members: members.into_iter().collect(),
            coordinator,
            master: BTreeSet::new(),
            copies: BTreeMap::new(),
            local_members: BTreeMap::new(),
            max_view: 0,
            significant: 0,
            moves: 0,
            cell_broadcast: false,
            sender_of: BTreeMap::new(),
        }
    }

    /// Delivers with one cell-wide wireless broadcast per view cell instead
    /// of per-member downlinks: the wireless cost per group message drops
    /// from `|G|·C_wireless` to `(|LV|+1)·C_wireless`.
    pub fn with_cell_broadcast(mut self) -> Self {
        self.cell_broadcast = true;
        self
    }

    /// Current master view (coordinator's copy).
    pub fn view(&self) -> &BTreeSet<MssId> {
        &self.master
    }

    /// Number of members in the group, `|G|`.
    pub fn group_size(&self) -> usize {
        self.members.len()
    }

    /// True when `mh` belongs to the group.
    pub fn is_member(&self, mh: MhId) -> bool {
        self.members.contains(&mh)
    }

    /// Largest view size observed during the run (`|LV(G)|max`).
    pub fn max_view_size(&self) -> usize {
        self.max_view
    }

    /// Member moves that changed the view.
    pub fn significant_moves(&self) -> u64 {
        self.significant
    }

    /// All member moves observed.
    pub fn member_moves(&self) -> u64 {
        self.moves
    }

    /// Measured significant fraction `f`.
    pub fn significant_fraction(&self) -> f64 {
        if self.moves == 0 {
            return 0.0;
        }
        self.significant as f64 / self.moves as f64
    }

    /// True when every view copy matches the master and the master matches
    /// the cells that actually host members. Only meaningful at quiescence.
    pub fn is_consistent(&self) -> bool {
        let occupied: BTreeSet<MssId> = self
            .local_members
            .iter()
            .filter(|(_, ms)| !ms.is_empty())
            .map(|(m, _)| *m)
            .collect();
        if occupied != self.master {
            return false;
        }
        self.master
            .iter()
            .all(|m| self.copies.get(m).is_some_and(|c| *c == self.master))
    }

    fn deliver_local(
        &mut self,
        ctx: &mut GroupCtx<'_, '_, LvMsg, ()>,
        at: MssId,
        msg_id: u64,
        sender: MhId,
    ) {
        if self.cell_broadcast {
            // One transmission for the whole cell; the sender and any
            // non-member bystanders simply discard it on reception.
            ctx.broadcast_cell(at, LvMsg::GroupDeliver { msg_id });
            return;
        }
        let locals: Vec<MhId> = self
            .local_members
            .get(&at)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        for mh in locals {
            if mh != sender {
                let _ = ctx.send_wireless_down(at, mh, LvMsg::GroupDeliver { msg_id });
            }
        }
    }

    fn fan_out(
        &mut self,
        ctx: &mut GroupCtx<'_, '_, LvMsg, ()>,
        from_mss: MssId,
        msg_id: u64,
        sender: MhId,
    ) {
        let view: Vec<MssId> = self
            .copies
            .get(&from_mss)
            .map(|c| c.iter().copied().collect())
            .unwrap_or_default();
        for mss in view {
            if mss == from_mss {
                self.deliver_local(ctx, mss, msg_id, sender);
            } else {
                ctx.send_fixed(from_mss, mss, LvMsg::GroupFwd { msg_id, sender });
            }
        }
    }

    fn coordinator_apply(
        &mut self,
        ctx: &mut GroupCtx<'_, '_, LvMsg, ()>,
        add: Option<MssId>,
        del: Option<MssId>,
    ) {
        let at = self.coordinator;
        if let Some(a) = add {
            if !self.master.contains(&a) {
                self.significant += 1;
                ctx.bump("lv_significant_adds");
                ctx.emit(mobidist_net::obs::TraceEvent::LvUpdate {
                    cell: a,
                    added: true,
                });
                // Incremental update to current members, full copy to the
                // newcomer.
                let current: Vec<MssId> = self.master.iter().copied().collect();
                for m in current {
                    if m != a {
                        ctx.send_fixed(at, m, LvMsg::ViewAdd { mss: a });
                        ctx.bump("lv_update_msgs");
                    }
                }
                self.master.insert(a);
                ctx.send_fixed(
                    at,
                    a,
                    LvMsg::ViewCopy {
                        view: self.master.iter().copied().collect(),
                    },
                );
                ctx.bump("lv_update_msgs");
                self.max_view = self.max_view.max(self.master.len());
            }
        }
        if let Some(d) = del {
            if self.master.contains(&d) && self.local_members.get(&d).is_none_or(|s| s.is_empty()) {
                self.significant += 1;
                ctx.bump("lv_significant_dels");
                ctx.emit(mobidist_net::obs::TraceEvent::LvUpdate {
                    cell: d,
                    added: false,
                });
                self.master.remove(&d);
                let all: Vec<MssId> = self.master.iter().copied().chain([d]).collect();
                for m in all {
                    ctx.send_fixed(at, m, LvMsg::ViewDel { mss: d });
                    ctx.bump("lv_update_msgs");
                }
            }
        }
        // Keep the coordinator's own copy current when it is a view member.
        if self.copies.contains_key(&at) || self.master.contains(&at) {
            self.copies.insert(at, self.master.clone());
        }
    }

    /// Handles a member arriving at `mss` (join or reconnect).
    fn member_arrived(
        &mut self,
        ctx: &mut GroupCtx<'_, '_, LvMsg, ()>,
        mh: MhId,
        mss: MssId,
        prev: Option<MssId>,
    ) {
        self.moves += 1;
        self.local_members.entry(mss).or_default().insert(mh);
        match prev {
            Some(p) if p != mss => {
                // Paper protocol: M asks M' to notify the coordinator.
                ctx.send_fixed(mss, p, LvMsg::HandoffNotify { mh, new_mss: mss });
                ctx.bump("lv_update_msgs");
            }
            Some(_) => {
                // Returned to the same cell: nothing can have changed.
            }
            None => {
                // No handoff information: conservatively ask the coordinator
                // to add this cell (it ignores no-ops).
                ctx.send_fixed(
                    mss,
                    self.coordinator,
                    LvMsg::ViewChange {
                        add: Some(mss),
                        del: None,
                    },
                );
                ctx.bump("lv_update_msgs");
            }
        }
    }
}

impl LocationStrategy for LocationView {
    type Msg = LvMsg;
    type Timer = ();

    fn name(&self) -> &'static str {
        "location-view"
    }

    fn on_start(
        &mut self,
        _ctx: &mut GroupCtx<'_, '_, LvMsg, ()>,
        placement: &BTreeMap<MhId, MssId>,
    ) {
        // Bootstrap: the initial view is distributed out of band.
        for (mh, mss) in placement {
            self.local_members.entry(*mss).or_default().insert(*mh);
            self.master.insert(*mss);
        }
        for mss in self.master.clone() {
            self.copies.insert(mss, self.master.clone());
        }
        self.copies.insert(self.coordinator, self.master.clone());
        self.max_view = self.master.len();
    }

    fn send_group_message(
        &mut self,
        ctx: &mut GroupCtx<'_, '_, LvMsg, ()>,
        from: MhId,
        msg_id: u64,
    ) {
        self.sender_of.insert(msg_id, from);
        let _ = ctx.send_wireless_up(from, LvMsg::GroupSend { msg_id });
    }

    fn on_mss_msg(
        &mut self,
        ctx: &mut GroupCtx<'_, '_, LvMsg, ()>,
        at: MssId,
        src: Src,
        msg: LvMsg,
    ) {
        match msg {
            LvMsg::GroupSend { msg_id } => {
                let sender = src.as_mh().expect("group sends arrive on the uplink");
                if self.copies.contains_key(&at) {
                    self.fan_out(ctx, at, msg_id, sender);
                } else {
                    // Transient: our own add hasn't reached us yet. Relay
                    // through the coordinator, which knows the master view.
                    ctx.bump("lv_relay_via_coord");
                    ctx.send_fixed(
                        at,
                        self.coordinator,
                        LvMsg::RelayViaCoord {
                            msg_id,
                            sender,
                            origin: at,
                        },
                    );
                }
            }
            LvMsg::RelayViaCoord {
                msg_id,
                sender,
                origin,
            } => {
                let targets: BTreeSet<MssId> =
                    self.master.iter().copied().chain([origin]).collect();
                for mss in targets {
                    if mss == at {
                        self.deliver_local(ctx, at, msg_id, sender);
                    } else {
                        ctx.send_fixed(at, mss, LvMsg::GroupFwd { msg_id, sender });
                    }
                }
            }
            LvMsg::GroupFwd { msg_id, sender } => {
                self.deliver_local(ctx, at, msg_id, sender);
            }
            LvMsg::HandoffNotify { mh, new_mss } => {
                // We are M': decide what the coordinator must change.
                let _ = mh;
                let my_view = self.copies.get(&at);
                let add = match my_view {
                    Some(v) if v.contains(&new_mss) => None,
                    _ => Some(new_mss),
                };
                let del = if self.local_members.get(&at).is_none_or(|s| s.is_empty()) {
                    Some(at)
                } else {
                    None
                };
                if add.is_some() || del.is_some() {
                    ctx.send_fixed(at, self.coordinator, LvMsg::ViewChange { add, del });
                    ctx.bump("lv_update_msgs");
                }
            }
            LvMsg::ViewChange { add, del } => {
                debug_assert_eq!(at, self.coordinator);
                self.coordinator_apply(ctx, add, del);
            }
            LvMsg::ViewCopy { view } => {
                self.copies.insert(at, view.into_iter().collect());
            }
            LvMsg::ViewAdd { mss } => {
                if let Some(c) = self.copies.get_mut(&at) {
                    c.insert(mss);
                }
            }
            LvMsg::ViewDel { mss } => {
                if mss == at {
                    self.copies.remove(&at);
                } else if let Some(c) = self.copies.get_mut(&at) {
                    c.remove(&mss);
                }
            }
            LvMsg::GroupDeliver { .. } => unreachable!("deliveries terminate at MHs"),
        }
    }

    fn on_mh_msg(&mut self, ctx: &mut GroupCtx<'_, '_, LvMsg, ()>, at: MhId, _: Src, msg: LvMsg) {
        let LvMsg::GroupDeliver { msg_id } = msg else {
            unreachable!("MHs only receive deliveries");
        };
        // Under cell broadcast, bystanders and the sender itself overhear
        // the transmission and discard it.
        if !self.members.contains(&at) || self.sender_of.get(&msg_id) == Some(&at) {
            return;
        }
        ctx.deliver(at, msg_id);
    }

    fn on_member_joined(
        &mut self,
        ctx: &mut GroupCtx<'_, '_, LvMsg, ()>,
        mh: MhId,
        mss: MssId,
        prev: Option<MssId>,
    ) {
        self.member_arrived(ctx, mh, mss, prev);
    }

    fn on_member_left(&mut self, _ctx: &mut GroupCtx<'_, '_, LvMsg, ()>, mh: MhId, mss: MssId) {
        if let Some(s) = self.local_members.get_mut(&mss) {
            s.remove(&mh);
        }
    }

    fn on_member_disconnected(
        &mut self,
        ctx: &mut GroupCtx<'_, '_, LvMsg, ()>,
        mh: MhId,
        mss: MssId,
    ) {
        if let Some(s) = self.local_members.get_mut(&mss) {
            s.remove(&mh);
        }
        // The disconnection cell can tell immediately whether it emptied.
        if self.local_members.get(&mss).is_none_or(|s| s.is_empty())
            && self.copies.contains_key(&mss)
        {
            ctx.send_fixed(
                mss,
                self.coordinator,
                LvMsg::ViewChange {
                    add: None,
                    del: Some(mss),
                },
            );
            ctx.bump("lv_update_msgs");
        }
    }

    fn on_member_reconnected(
        &mut self,
        ctx: &mut GroupCtx<'_, '_, LvMsg, ()>,
        mh: MhId,
        mss: MssId,
        prev: Option<MssId>,
    ) {
        self.member_arrived(ctx, mh, mss, prev);
    }
}
