//! Search policies — locating a mobile host.
//!
//! The paper deliberately abstracts routing-layer location protocols behind a
//! fixed cost `C_search` (Section 2): "Our system model is not tied to any
//! particular routing scheme … we will assume that any message destined for a
//! mobile host incurs a fixed search cost." The [`Oracle`] policy realises
//! that abstraction. The [`Flood`] policy realises the worst case the paper
//! mentions — the source MSS contacts each of the other `M − 1` MSSs — with
//! cost derived from the actual control messages, for sensitivity studies
//! (experiment E4).
//!
//! [`Oracle`]: SearchPolicy::Oracle
//! [`Flood`]: SearchPolicy::Flood

/// How a source MSS locates an MH and forwards a message to its current
/// local MSS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchPolicy {
    /// Abstract constant-cost search: charges `C_search` from the
    /// [`CostModel`](crate::cost::CostModel) and takes the configured search
    /// latency. This is the paper's model.
    #[default]
    Oracle,
    /// Worst-case search: the source queries all `M − 1` other MSSs, the
    /// holder replies, and the message is forwarded — `M + 1` fixed-network
    /// messages charged at `C_fixed` each, taking three wired hops of
    /// latency.
    Flood,
    /// Mobile-IP-style routing (references [6, 10] of the paper): every MH
    /// has a *home agent* — the MSS of its initial cell — that tracks its
    /// location via a registration message on every `join`/`reconnect`
    /// (charged to the `ha_registrations`/`control_fixed` counters, since
    /// it belongs to the routing substrate, not the algorithm). A search
    /// then costs two fixed messages (origin → home agent, home agent
    /// tunnels to the current cell) and two wired hops of latency.
    HomeAgent,
}

impl SearchPolicy {
    /// Number of fixed-network control+forward messages one flood search
    /// costs in a system of `m` MSSs (queries to `m − 1` peers, one positive
    /// reply, one forward).
    ///
    /// # Examples
    ///
    /// ```
    /// use mobidist_net::search::SearchPolicy;
    /// assert_eq!(SearchPolicy::flood_message_count(8), 9);
    /// ```
    pub fn flood_message_count(m: usize) -> u64 {
        (m as u64).saturating_sub(1) + 2
    }

    /// Number of fixed-network messages one home-agent search costs
    /// (origin → home, home → current cell).
    ///
    /// # Examples
    ///
    /// ```
    /// use mobidist_net::search::SearchPolicy;
    /// assert_eq!(SearchPolicy::home_agent_message_count(), 2);
    /// ```
    pub fn home_agent_message_count() -> u64 {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_oracle() {
        assert_eq!(SearchPolicy::default(), SearchPolicy::Oracle);
    }

    #[test]
    fn flood_count_formula() {
        assert_eq!(SearchPolicy::flood_message_count(2), 3);
        assert_eq!(SearchPolicy::flood_message_count(10), 11);
        // Degenerate single-MSS system still forwards.
        assert_eq!(SearchPolicy::flood_message_count(1), 2);
    }
}
